"""Cache-key soundness dataflow (rules K001–K003).

The content-addressed result cache (:mod:`repro.experiments.cache`) is
only sound if the SHA-256 cell key captures *everything* that influences
a :class:`~repro.sim.simulator.SimulationResult`.  Today that contract
is enforced dynamically (the hypothesis suites replay cells and compare
bytes), which means a new config knob that misses the key silently
serves stale hits until a test happens to vary it.  This module makes
the contract a lint-time fact on top of the
:class:`~repro.analysis.callgraph.ProjectIndex` symbol table:

* the **cached entry points** are the process-pool worker functions
  (``simulate_cell`` / ``simulate_fleet_device``); everything reachable
  from them — through resolved call edges plus a class-liveness closure
  (a constructed or registry-referenced class makes all of its methods
  reachable, which is how the ``SCHEMES[...]`` dispatch is followed) —
  runs *inside* a cached cell;
* every **key-bearing config class** (:data:`KEY_CLASSES`) has a
  canonical-JSON emitter — ``to_dict`` on the class,
  ``config_to_dict`` for :class:`~repro.config.SSDConfig`, or plain
  ``dataclasses.asdict`` when neither exists — whose emitted key set is
  recovered from the AST (dict literals, ``out["k"] = …`` stores, dict
  comprehensions over module-level literal registries); an emitter that
  iterates ``dataclasses.fields(self)`` / ``asdict(self)`` is
  *structurally complete* and covers every field by construction;
* three rules fire on those facts:

  ======== ==========================================================
  ``K001`` a dataclass field of a key class is read inside a cached
           cell but absent from the class's canonical-key emission —
           the knob changes results without changing the key
  ``K002`` an ambient input (``os.environ``, ``open``/``Path.read_*``,
           ``platform.*``, ``sys.version*``) is read inside a cached
           cell outside the allowlist — the cell's outcome depends on
           state the key cannot see
  ``K003`` a canonical-key emitter enumerates its keys explicitly and
           omits a dataclass field — fails structurally even before
           any read of the field exists
  ======== ==========================================================

The analysis is deliberately conservative in the same way the effect
pass is: an unresolvable call edge or an untypeable expression drops
facts rather than inventing them, so unknown code never fires a rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping
from weakref import WeakKeyDictionary

from .callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    annotation_class_name,
)
from .core import ProjectContext, Rule, SourceFile, Violation, dotted_name
from .effects import _own_statements

#: Config classes whose fields feed the canonical cache keys.  The five
#: top-level ones are named by the cell/device key payloads; the section
#: and tenant classes are nested inside them and share the contract.
KEY_CLASSES = frozenset({
    "SSDConfig", "GeometryConfig", "TimingConfig", "ReliabilityConfig",
    "CacheConfig", "TranslationConfig", "TraceProfile", "FaultConfig",
    "FrontendConfig", "FleetConfig", "TenantSpec",
})

#: Key classes serialised by a module-level function instead of a
#: ``to_dict`` method (class name -> emitter function name).
CANONICAL_EMITTERS: dict[str, str] = {"SSDConfig": "config_to_dict"}

#: Module-level functions whose call trees run inside a cached cell
#: (the process-pool worker entry points of ``experiments/parallel.py``).
ENTRY_POINTS = frozenset({"simulate_cell", "simulate_fleet_device"})

#: Files whose ambient reads K002 accepts, and why:
#:
#: * ``experiments/cache.py`` — the cache itself (``REPRO_CACHE_DIR``,
#:   entry files): where a result is *stored* never changes what it is;
#: * ``experiments/parallel.py`` — ``resolve_jobs`` reads ``REPRO_JOBS``
#:   to size the pool; the worker count never influences results
#:   (``tests/test_parallel.py`` pins parallel == sequential bytes);
#: * ``fleet/checkpoint.py`` — resume reads a snapshot that is itself a
#:   pure function of the keyed :class:`~repro.fleet.FleetConfig` (the
#:   store is addressed by ``device_key`` and version-checked on load;
#:   ``tests/test_checkpoint.py`` pins resume bit-identity);
#: * ``bench.py`` / ``cli.py`` — host-side harness and argument
#:   plumbing around the cells, not the cells themselves.
K002_ALLOWED_FILES = frozenset({
    "experiments/cache.py", "experiments/parallel.py",
    "fleet/checkpoint.py", "bench.py", "cli.py",
})

#: Callable names that make an emitter structurally complete when
#: applied to the object being serialised.
_STRUCTURAL_CALLS = frozenset({"fields", "asdict"})

#: Container heads whose element annotation types loop variables
#: (``tenants: tuple[TenantSpec, ...]`` types ``for t in self.tenants``).
_CONTAINER_HEADS = frozenset({
    "tuple", "Tuple", "list", "List", "set", "Set", "frozenset",
    "FrozenSet", "Sequence", "Iterable", "Iterator",
})


def annotation_element_class(node: ast.expr | None) -> str | None:
    """Element class name of a container annotation, if pinned.

    ``tuple[TenantSpec, ...]`` / ``list[Block]`` / ``Sequence["Block"]``
    yield the element class; heterogeneous tuples and anything fancier
    yield ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if not isinstance(node, ast.Subscript):
        return None
    if annotation_class_name(node.value) not in _CONTAINER_HEADS:
        return None
    sl = node.slice
    if isinstance(sl, ast.Tuple):
        names = {annotation_class_name(e) for e in sl.elts
                 if not (isinstance(e, ast.Constant)
                         and e.value is Ellipsis)}
        names.discard(None)
        if len(names) == 1:
            (only,) = names
            return only
        return None
    return annotation_class_name(sl)


def _is_classvar(ann: ast.expr) -> bool:
    head = ann.value if isinstance(ann, ast.Subscript) else ann
    return annotation_class_name(head) == "ClassVar"


class SoundnessAnalysis:
    """One whole-tree cache-key soundness pass shared by the K-rules."""

    def __init__(self, sources: Mapping[str, SourceFile]) -> None:
        self.sources = sources
        self.index = ProjectIndex.build(sources)
        self.violations: list[Violation] = []
        self._emitted: set[tuple[str, str, int, int, str]] = set()
        #: qualname -> entry-point name that first reached the function.
        self.reachable: dict[str, str] = {}
        self._live: set[str] = set()
        self._types: dict[str, dict[str, ClassInfo]] = {}
        self._fields_memo: dict[str, dict[str, ast.expr | None]] = {}
        self._coverage_memo: dict[
            str, tuple[frozenset[str] | None, FunctionInfo | None]] = {}
        self._registry_memo: dict[tuple[str, str], tuple[ClassInfo, ...]] = {}
        self._compute_reachability()
        self._check_k003()
        self._check_reads()

    # -- class facts -------------------------------------------------------

    def _class_key(self, cls: ClassInfo) -> str:
        return f"{cls.relpath}::{cls.name}"

    def _class_fields(self, cls: ClassInfo) -> dict[str, ast.expr | None]:
        """Dataclass-style fields: class-body ``name: ann`` entries."""
        key = self._class_key(cls)
        memo = self._fields_memo.get(key)
        if memo is not None:
            return memo
        out: dict[str, ast.expr | None] = {}
        for stmt in cls.node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not _is_classvar(stmt.annotation)):
                out[stmt.target.id] = stmt.annotation
        self._fields_memo[key] = out
        return out

    def _class_bases(self, cls: ClassInfo) -> list[ClassInfo]:
        """``cls`` plus its resolvable base chain, breadth-first."""
        seen: list[ClassInfo] = [cls]
        queue = [cls]
        for _ in range(8):
            if not queue:
                break
            nxt: list[ClassInfo] = []
            for cur in queue:
                module = self.index.modules.get(cur.relpath)
                if module is None:
                    continue
                for base_name in cur.base_names:
                    base = self.index.resolve_class_name(base_name, module)
                    if base is not None and base not in seen:
                        seen.append(base)
                        nxt.append(base)
            queue = nxt
        return seen

    def _attr_class(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        """Class of ``obj.<attr>`` for an ``obj`` of class ``cls``."""
        for cur in self._class_bases(cls):
            module = self.index.modules.get(cur.relpath)
            if module is None:
                continue
            ann = self._class_fields(cur).get(attr)
            name = annotation_class_name(ann)
            if name is not None:
                found = self.index.resolve_class_name(name, module)
                if found is not None:
                    return found
        return self.index.class_attr_type(cls, attr)

    def _attr_elem_class(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        """Element class of a container-typed ``obj.<attr>``."""
        for cur in self._class_bases(cls):
            module = self.index.modules.get(cur.relpath)
            if module is None:
                continue
            name = annotation_element_class(self._class_fields(cur).get(attr))
            if name is not None:
                found = self.index.resolve_class_name(name, module)
                if found is not None:
                    return found
        return None

    # -- expression typing -------------------------------------------------

    def _expr_class(self, expr: ast.expr, fn: FunctionInfo,
                    module: ModuleInfo,
                    types: Mapping[str, ClassInfo]) -> ClassInfo | None:
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and fn.cls is not None:
                return fn.cls
            return types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(expr.value, fn, module, types)
            if base is not None:
                return self._attr_class(base, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            inner = expr.value
            if isinstance(inner, ast.Attribute):
                base = self._expr_class(inner.value, fn, module, types)
                if base is not None:
                    return self._attr_elem_class(base, inner.attr)
            return None
        if isinstance(expr, ast.Call):
            constructed = self.index.constructed_class(expr, module)
            if constructed is not None:
                return constructed
            resolved = self.index.resolve_call(expr, module, fn.cls, types)
            if resolved is not None:
                ret = annotation_class_name(resolved.node.returns)
                if ret is not None:
                    ret_module = self.index.modules.get(resolved.relpath)
                    if ret_module is not None:
                        return self.index.resolve_class_name(ret, ret_module)
            return None
        return None

    def _iter_elem_class(self, expr: ast.expr, fn: FunctionInfo,
                         module: ModuleInfo,
                         types: Mapping[str, ClassInfo]) -> ClassInfo | None:
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(expr.value, fn, module, types)
            if base is not None:
                return self._attr_elem_class(base, expr.attr)
        return None

    def _function_types(self, fn: FunctionInfo,
                        module: ModuleInfo) -> dict[str, ClassInfo]:
        """Instance classes of params and locals, one forward pass."""
        cached = self._types.get(fn.qualname)
        if cached is not None:
            return cached
        types: dict[str, ClassInfo] = dict(self.index.param_types(fn, module))
        stmts = sorted(_own_statements(fn.node),
                       key=lambda s: (s.lineno, s.col_offset))
        for stmt in stmts:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                cls = self._expr_class(stmt.value, fn, module, types)
                if cls is not None:
                    types[stmt.targets[0].id] = cls
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)):
                name = annotation_class_name(stmt.annotation)
                if name is not None:
                    cls2 = self.index.resolve_class_name(name, module)
                    if cls2 is not None:
                        types[stmt.target.id] = cls2
            elif (isinstance(stmt, (ast.For, ast.AsyncFor))
                  and isinstance(stmt.target, ast.Name)):
                elem = self._iter_elem_class(stmt.iter, fn, module, types)
                if elem is not None:
                    types[stmt.target.id] = elem
        self._types[fn.qualname] = types
        return types

    # -- reachability ------------------------------------------------------

    def _compute_reachability(self) -> None:
        worklist: list[tuple[FunctionInfo, str]] = []
        for relpath in sorted(self.index.modules):
            mod = self.index.modules[relpath]
            for name in sorted(mod.functions):
                if name in ENTRY_POINTS:
                    worklist.append((mod.functions[name], name))
        while worklist:
            fn, entry = worklist.pop()
            if fn.qualname in self.reachable:
                continue
            self.reachable[fn.qualname] = entry
            self._scan_function(fn, entry, worklist)

    def _mark_live(self, cls: ClassInfo, entry: str,
                   worklist: list[tuple[FunctionInfo, str]]) -> None:
        """A live class runs inside the cell: all its methods do too."""
        key = self._class_key(cls)
        if key in self._live:
            return
        self._live.add(key)
        for cur in self._class_bases(cls):
            for name in sorted(cur.methods):
                worklist.append((cur.methods[name], entry))

    def _registry_classes(self, name: str,
                          module: ModuleInfo) -> tuple[ClassInfo, ...]:
        """Classes inside a module-level literal registry named ``name``.

        Resolves ``SCHEMES[cfg.scheme](dev_cfg)``-style dispatch: the
        name is followed through its from-import to the module-level
        ``dict``/``list``/``tuple`` literal, and every class referenced
        inside the literal is returned.
        """
        origin_mod = module
        origin_name = name
        imp = module.from_imports.get(name)
        if imp is not None:
            target = self.index.modules_by_key.get(imp[0])
            if target is None:
                return ()
            origin_mod, origin_name = target, imp[1]
        memo_key = (origin_mod.relpath, origin_name)
        cached = self._registry_memo.get(memo_key)
        if cached is not None:
            return cached
        out: list[ClassInfo] = []
        src = self.sources.get(origin_mod.relpath)
        if src is not None:
            for stmt in src.tree.body:
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == origin_name
                        and isinstance(stmt.value,
                                       (ast.Dict, ast.List, ast.Tuple,
                                        ast.Set))):
                    continue
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name):
                        cls = self.index.resolve_class_name(sub.id,
                                                            origin_mod)
                        if cls is not None:
                            out.append(cls)
        result = tuple(out)
        self._registry_memo[memo_key] = result
        return result

    def _scan_function(self, fn: FunctionInfo, entry: str,
                       worklist: list[tuple[FunctionInfo, str]]) -> None:
        module = self.index.modules[fn.relpath]
        types = self._function_types(fn, module)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                resolved = self.index.resolve_call(node, module, fn.cls,
                                                   types)
                if resolved is not None:
                    worklist.append((resolved, entry))
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Load):
                cls = self.index.resolve_class_name(node.id, module)
                if cls is not None:
                    self._mark_live(cls, entry, worklist)
                    continue
                for reg_cls in self._registry_classes(node.id, module):
                    self._mark_live(reg_cls, entry, worklist)

    # -- canonical-key coverage --------------------------------------------

    def _find_emitter(self, cls: ClassInfo) -> FunctionInfo | None:
        """The canonical-JSON emitter of a key class, if it has one."""
        external = CANONICAL_EMITTERS.get(cls.name)
        if external is not None:
            candidates = [
                mod.functions[external]
                for relpath in sorted(self.index.modules)
                for mod in (self.index.modules[relpath],)
                if external in mod.functions
            ]
            if len(candidates) == 1:
                return candidates[0]
            return None
        for cur in self._class_bases(cls):
            if "to_dict" in cur.methods:
                return cur.methods["to_dict"]
        return None

    def _dictcomp_keys(self, node: ast.DictComp,
                       module: ModuleInfo) -> set[str]:
        """Constant keys of ``{name: … for name in REGISTRY}`` comps."""
        if not (isinstance(node.key, ast.Name) and len(node.generators) == 1):
            return set()
        gen = node.generators[0]
        if not (isinstance(gen.target, ast.Name)
                and gen.target.id == node.key.id
                and isinstance(gen.iter, ast.Name)):
            return set()
        origin_mod = module
        origin_name = gen.iter.id
        imp = module.from_imports.get(origin_name)
        if imp is not None:
            target = self.index.modules_by_key.get(imp[0])
            if target is None:
                return set()
            origin_mod, origin_name = target, imp[1]
        src = self.sources.get(origin_mod.relpath)
        if src is None:
            return set()
        for stmt in src.tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == origin_name):
                continue
            value = stmt.value
            if isinstance(value, ast.Dict):
                return {k.value for k in value.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str)}
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                return {e.value for e in value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)}
        return set()

    def _emitted_keys(self, emitter: FunctionInfo,
                      ) -> frozenset[str] | None:
        """Keys the emitter writes, or ``None`` if structurally complete."""
        module = self.index.modules[emitter.relpath]
        targets = {"self", "cls"}
        if emitter.params:
            targets.add(emitter.params[0])
        keys: set[str] = set()
        for node in ast.walk(emitter.node):
            if isinstance(node, ast.Call):
                name = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                if (name in _STRUCTURAL_CALLS and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in targets):
                    return None
            elif isinstance(node, ast.Dict):
                keys.update(k.value for k in node.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str))
            elif isinstance(node, ast.DictComp):
                keys.update(self._dictcomp_keys(node, module))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)):
                        keys.add(target.slice.value)
        return frozenset(keys)

    def _coverage(self, cls: ClassInfo,
                  ) -> tuple[frozenset[str] | None, FunctionInfo | None]:
        """``(emitted keys | None for all-covered, emitter fn | None)``."""
        key = self._class_key(cls)
        cached = self._coverage_memo.get(key)
        if cached is not None:
            return cached
        emitter = self._find_emitter(cls)
        emitted = self._emitted_keys(emitter) if emitter is not None else None
        result = (emitted, emitter)
        self._coverage_memo[key] = result
        return result

    def _emitter_label(self, cls: ClassInfo,
                       emitter: FunctionInfo | None) -> str:
        if emitter is None:
            return "dataclasses.asdict"
        if emitter.cls is not None:
            return f"{emitter.cls.name}.{emitter.name}()"
        return f"{emitter.name}()"

    # -- K003: emitter completeness ----------------------------------------

    def _check_k003(self) -> None:
        for name in sorted(KEY_CLASSES):
            for cls in self.index.classes_by_name.get(name, []):
                emitted, emitter = self._coverage(cls)
                if emitted is None or emitter is None:
                    continue
                for field_name in sorted(self._class_fields(cls)):
                    if field_name in emitted:
                        continue
                    self.emit(
                        "K003", emitter.relpath, emitter.node,
                        f"canonical-key emitter "
                        f"{self._emitter_label(cls, emitter)} omits "
                        f"dataclass field '{cls.name}.{field_name}' — "
                        f"every field must reach the cache key (emit it, "
                        f"or iterate dataclasses.fields(self))")

    # -- K001/K002: reads inside cached cells ------------------------------

    def _check_reads(self) -> None:
        for qual in sorted(self.reachable):
            fn = self.index.functions.get(qual)
            if fn is None:
                continue
            entry = self.reachable[qual]
            module = self.index.modules[fn.relpath]
            types = self._function_types(fn, module)
            self._check_k001(fn, entry, module, types)
            if fn.relpath not in K002_ALLOWED_FILES:
                self._check_k002(fn, entry)

    def _check_k001(self, fn: FunctionInfo, entry: str, module: ModuleInfo,
                    types: Mapping[str, ClassInfo]) -> None:
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)):
                continue
            base = self._expr_class(node.value, fn, module, types)
            if base is None or base.name not in KEY_CLASSES:
                continue
            if node.attr not in self._class_fields(base):
                continue  # property/method access, not a stored field
            emitted, emitter = self._coverage(base)
            if emitted is None or node.attr in emitted:
                continue
            self.emit(
                "K001", fn.relpath, node,
                f"'{base.name}.{node.attr}' is read in {fn.name}() "
                f"(reachable from cached entry point {entry}()) but "
                f"missing from the canonical key "
                f"({self._emitter_label(base, emitter)}) — the knob "
                f"changes results without changing the cache key, so "
                f"stale hits would be served")

    def _check_k002(self, fn: FunctionInfo, entry: str) -> None:
        for node in ast.walk(fn.node):
            what: str | None = None
            if isinstance(node, ast.Call):
                dn = dotted_name(node.func) or ""
                if dn == "os.getenv":
                    what = "os.getenv(...)"
                elif dn.startswith("platform."):
                    what = f"{dn}(...)"
                elif isinstance(node.func, ast.Name) \
                        and node.func.id == "open":
                    what = "open(...)"
                elif isinstance(node.func, ast.Attribute) \
                        and node.func.attr in ("read_text", "read_bytes"):
                    what = f".{node.func.attr}(...)"
            elif isinstance(node, ast.Attribute):
                dn = dotted_name(node) or ""
                if dn == "os.environ":
                    what = "os.environ"
                elif dn.startswith("sys.version"):
                    what = dn
            if what is None:
                continue
            self.emit(
                "K002", fn.relpath, node,
                f"ambient input {what} read in {fn.name}() (reachable "
                f"from cached entry point {entry}()) — a cached cell's "
                f"outcome may depend on state the cache key cannot see; "
                f"hoist it out of the cell or allowlist the file")

    # -- reporting ---------------------------------------------------------

    def emit(self, rule: str, relpath: str, node: ast.AST,
             message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, relpath, lineno, col, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.violations.append(Violation(rule, relpath, lineno, col, message))


#: One analysis per engine run, shared by the three K-rule instances.
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectContext, SoundnessAnalysis]" = (
    WeakKeyDictionary())


def project_soundness(ctx: ProjectContext) -> SoundnessAnalysis:
    """The (memoized) whole-tree cache-key analysis for one lint run."""
    analysis = _ANALYSIS_CACHE.get(ctx)
    if analysis is None:
        analysis = SoundnessAnalysis(ctx.sources)
        _ANALYSIS_CACHE[ctx] = analysis
    return analysis


class _SoundnessRule(Rule):
    """Base for the K-family: filter the shared analysis by rule id."""

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.sources:
            return
        for violation in project_soundness(ctx).violations:
            if violation.rule == self.id:
                yield violation


class CacheKeyTaintRule(_SoundnessRule):
    """K001: key-class field read in a cached cell but absent from the key."""

    id = "K001"
    title = "config field read in a cached cell is missing from the cache key"


class AmbientInputRule(_SoundnessRule):
    """K002: ambient input read inside a cached cell outside the allowlist."""

    id = "K002"
    title = "ambient input read inside a cached cell"


class CanonicalKeyCompletenessRule(_SoundnessRule):
    """K003: explicit canonical-key emitter omits a dataclass field."""

    id = "K003"
    title = "canonical-key emitter omits a dataclass field"
