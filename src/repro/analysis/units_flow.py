"""Interprocedural unit & address-space dataflow (rules U001–U003).

The simulator's dimensional contracts — latencies are **milliseconds**,
sizes are **bytes**, and the three address spaces (4 KiB subpage LSN,
16 KiB logical-page LPN, physical PPN) never interchange without an
explicit conversion — live in annotations and naming conventions.  This
module turns them into checked facts:

* facts are *seeded* from the ``repro.units`` vocabulary
  (``Annotated`` aliases ``Ms``/``Bytes``/``Lsn``/… on signatures and
  attributes), from naming conventions (``*_ms``, ``*_bytes``,
  ``*_lsn``, exact names ``lsn``/``lpn``/``ppn``, plural container
  names ``*_lsns``; names containing ``_per_`` or starting ``n_``/
  ``num_`` are rates/counts and carry no unit), and from the
  ``KIB``/``MIB``/``GIB``/``US``/``SEC`` scale factors;
* facts *propagate* through assignments, arithmetic, returns and —
  via the :class:`~repro.analysis.callgraph.ProjectIndex` call graph —
  across call edges, with unannotated return units inferred from
  function bodies by a small fixpoint;
* three rule families fire on contradictions:

  ======== ========================================================
  ``U001`` mixed-unit arithmetic (``ms + bytes``, ``ms < bytes``,
           multiplying two ``ms`` values)
  ``U002`` address-space confusion (an LSN reaching an LPN/PPN
           parameter, indexing a ``*_by_lpn`` table with an LSN, …)
  ``U003`` lossy/unconverted boundary crossings (``kib`` meeting
           ``bytes`` unscaled, ``US``/``SEC``/``KIB`` factors applied
           twice, raw KiB counts passed where ``Bytes`` is declared)
  ======== ========================================================

Annotations always win over naming conventions (``lpn_of_lsn(...) ->
Lpn`` is an LPN despite its suffix); non-scalar annotations
(``tuple[...]``, ``range``, ``np.ndarray``) pin a name to *unknown*
rather than letting a misleading suffix invent a unit.  The analysis is
deliberately conservative: unknown units never fire a rule.

``units.py`` itself is exempt — it is the conversion boundary, and its
helpers legitimately mix dimensions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping
from weakref import WeakKeyDictionary

from .callgraph import ClassInfo, FunctionInfo, ModuleInfo, ProjectIndex
from .core import ProjectContext, Rule, SourceFile, Violation

#: ``repro.units`` alias name -> unit fact.
VOCAB_UNITS: dict[str, str] = {
    "Ms": "ms",
    "Bytes": "bytes",
    "Kib": "kib",
    "Lsn": "lsn",
    "Lpn": "lpn",
    "Ppn": "ppn",
    "SubpageCount": "subpages",
    "PeCycles": "pe",
}

#: Array-column alias name -> *element* unit fact.  The aliases wrap
#: ``Any`` (columns are ndarrays or ``None``), so they parse as
#: containers whose elements carry the unit — ``region.slot_time[j]``
#: reads as ms without asserting anything about the array object.
VOCAB_ELEMS: dict[str, str] = {
    "MsArray": "ms",
    "LsnArray": "lsn",
    "PeCyclesArray": "pe",
    "SubpageCountArray": "subpages",
}

ADDRESS_SPACES = frozenset({"lsn", "lpn", "ppn"})

#: Unit pairs related by a known scale factor: mixing them is a missed
#: conversion (U003), not meaningless arithmetic (U001).
CONVERTIBLE = (frozenset({"kib", "bytes"}), frozenset({"us", "ms"}))

_SCALAR_ANNOTATIONS = frozenset({"int", "float", "bool"})
_CONTAINER_ANNOTATIONS = frozenset({
    "list", "List", "set", "Set", "frozenset", "FrozenSet", "tuple",
    "Sequence", "Iterable", "Iterator", "Collection", "deque",
})
_MAPPING_ANNOTATIONS = frozenset({
    "dict", "Dict", "Mapping", "MutableMapping", "defaultdict",
    "DefaultDict", "Counter", "OrderedDict",
})

#: ``x * KIB`` scales KiB to bytes; ``x * US`` / ``x * SEC`` convert
#: microseconds / seconds to milliseconds.
_BYTE_FACTORS = frozenset({"KIB", "MIB", "GIB"})

_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_pe_cycles", "pe"),
    ("_ms", "ms"),
    ("_us", "us"),
    ("_bytes", "bytes"),
    ("_kib", "kib"),
    ("_lsn", "lsn"),
    ("_lpn", "lpn"),
    ("_ppn", "ppn"),
    ("_subpages", "subpages"),
    ("_pe", "pe"),
)
_EXACT_UNITS = {"lsn": "lsn", "lpn": "lpn", "ppn": "ppn", "pe_cycles": "pe"}

_SUFFIX_ELEMS: tuple[tuple[str, str], ...] = (
    ("_lsns", "lsn"),
    ("_lpns", "lpn"),
    ("_ppns", "ppn"),
)
_EXACT_ELEMS = {"lsns": "lsn", "lpns": "lpn", "ppns": "ppn"}

#: ``chunks_by_lpn`` / ``by_lsn`` — a container keyed by that space.
_BY_DOMAIN = re.compile(r"(?:^|_)by_(lsn|lpn|ppn)$")

#: Counts and rates: ``n_lsns`` is *how many* LSNs, not an LSN;
#: ``power_loss_per_ms`` is a rate, not a latency.
_NO_CONVENTION_PREFIXES = ("n_", "num_")


def name_unit(name: str) -> str | None:
    """Scalar unit a bare name implies by convention, if any."""
    low = name.lower()
    if "_per_" in low or low.startswith(_NO_CONVENTION_PREFIXES):
        return None
    if _BY_DOMAIN.search(low):
        return None  # a keyed container, not a scalar of that space
    if low in _EXACT_UNITS:
        return _EXACT_UNITS[low]
    for suffix, unit in _SUFFIX_UNITS:
        if low.endswith(suffix):
            return unit
    return None


def name_elem(name: str) -> str | None:
    """Element unit a container name implies (``lsns`` holds LSNs)."""
    low = name.lower()
    if "_per_" in low or low.startswith(_NO_CONVENTION_PREFIXES):
        return None
    if low in _EXACT_ELEMS:
        return _EXACT_ELEMS[low]
    for suffix, unit in _SUFFIX_ELEMS:
        if low.endswith(suffix):
            return unit
    return None


def name_domain(name: str) -> str | None:
    """Key address space of a ``*_by_lpn``-style container name."""
    m = _BY_DOMAIN.search(name.lower())
    return m.group(1) if m else None


def _ann_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_none_ann(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant) and node.value is None) or (
        isinstance(node, ast.Name) and node.id == "None")


@dataclass(frozen=True)
class AnnInfo:
    """What an annotation expression says about units.

    ``kind`` is one of ``"unit"`` (a vocabulary alias), ``"scalar"``
    (``int``/``float`` — naming conventions still apply), ``"container"``
    (element/key facts in ``elem``/``key_domain``), ``"other"`` (pins
    the value to *unknown*, silencing conventions), or ``"none"`` (no
    annotation at all).
    """

    kind: str
    unit: str | None = None
    elem: str | None = None
    key_domain: str | None = None


def parse_annotation(node: ast.expr | None) -> AnnInfo:
    """Classify one annotation AST node (handles string annotations)."""
    if node is None:
        return AnnInfo("none")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return AnnInfo("other")
    name = _ann_name(node)
    if name in VOCAB_UNITS:
        return AnnInfo("unit", unit=VOCAB_UNITS[name])
    if name in VOCAB_ELEMS:
        return AnnInfo("container", elem=VOCAB_ELEMS[name])
    if name in _SCALAR_ANNOTATIONS:
        return AnnInfo("scalar")
    if name == "range":
        return AnnInfo("container")
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        sides = [side for side in (node.left, node.right)
                 if not _is_none_ann(side)]
        if len(sides) == 1:
            return parse_annotation(sides[0])  # ``X | None`` -> X
        return AnnInfo("other")
    if isinstance(node, ast.Subscript):
        base = _ann_name(node.value)
        inner = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                 else [node.slice])
        if base == "Optional" and len(inner) == 1:
            return parse_annotation(inner[0])
        if base in _CONTAINER_ANNOTATIONS and base != "tuple":
            if len(inner) == 1:
                return AnnInfo("container", elem=parse_annotation(inner[0]).unit)
            return AnnInfo("container")
        if base in _MAPPING_ANNOTATIONS and len(inner) == 2:
            key = parse_annotation(inner[0]).unit
            value = parse_annotation(inner[1]).unit
            return AnnInfo("container", elem=value,
                           key_domain=key if key in ADDRESS_SPACES else None)
        return AnnInfo("other")
    return AnnInfo("other")


def _factor_kind(node: ast.expr) -> str | None:
    """Scale-factor role of an expression, by constant name."""
    name = _ann_name(node)
    if name in _BYTE_FACTORS:
        return "bytes"
    if name == "US":
        return "us2ms"
    if name == "SEC":
        return "sec2ms"
    return None


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    #: Declared/conventional unit per parameter (known units only).
    param_units: dict[str, str] = field(default_factory=dict)
    #: Element unit of container parameters.
    param_elems: dict[str, str] = field(default_factory=dict)
    #: Key address space of mapping parameters.
    param_domains: dict[str, str] = field(default_factory=dict)
    return_unit: str | None = None
    #: True when the return unit came from an annotation or a name
    #: convention (body inference must not override it).
    return_pinned: bool = False
    return_elem: str | None = None


class UnitsAnalysis:
    """One whole-tree dataflow pass shared by the three U-rules."""

    #: The conversion boundary itself is exempt (cf. rng.py for D001).
    SKIP_FILES = frozenset({"units.py"})

    def __init__(self, sources: Mapping[str, SourceFile]) -> None:
        self.sources = sources
        self.index = ProjectIndex.build(sources)
        self.summaries: dict[str, Summary] = {}
        #: ``(relpath, class name) -> {attr: AnnInfo}`` from class-level
        #: and ``self.x: T`` annotated assignments.
        self.attr_info: dict[tuple[str, str], dict[str, AnnInfo]] = {}
        self.violations: list[Violation] = []
        self._emitted: set[tuple[str, str, int, int, str]] = set()
        self._build_attr_info()
        self._seed_summaries()
        # Body-inferred return units depend on other summaries; two
        # quiet passes reach a fixpoint on this call-graph's depth,
        # the third pass reports.
        self._run_pass(emit=False)
        self._run_pass(emit=False)
        self._run_pass(emit=True)

    # -- fact seeding ------------------------------------------------------

    def _build_attr_info(self) -> None:
        for relpath in sorted(self.sources):
            for node in ast.walk(self.sources[relpath].tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                attrs: dict[str, AnnInfo] = {}
                for sub in ast.walk(node):
                    if not isinstance(sub, ast.AnnAssign):
                        continue
                    target = sub.target
                    attr: str | None = None
                    if isinstance(target, ast.Name):
                        attr = target.id
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == "self"):
                        attr = target.attr
                    if attr is None:
                        continue
                    info = parse_annotation(sub.annotation)
                    if info.kind in ("unit", "container"):
                        attrs[attr] = info
                if attrs:
                    self.attr_info[(relpath, node.name)] = attrs

    def attr_ann(self, cls: ClassInfo, attr: str,
                 _depth: int = 0) -> AnnInfo | None:
        """Annotation fact for ``instance.attr``, walking base classes."""
        if _depth > 8:
            return None
        info = self.attr_info.get((cls.relpath, cls.name), {}).get(attr)
        if info is not None:
            return info
        module = self.index.modules.get(cls.relpath)
        if module is None:
            return None
        for base_name in cls.base_names:
            base = self.index.resolve_class_name(base_name, module)
            if base is not None and base is not cls:
                info = self.attr_ann(base, attr, _depth + 1)
                if info is not None:
                    return info
        return None

    def _seed_summaries(self) -> None:
        for fn in self.index.iter_functions():
            summ = Summary()
            for pname, ann in zip(fn.params, fn.param_annotations):
                info = parse_annotation(ann)
                if info.kind == "unit":
                    summ.param_units[pname] = info.unit or ""
                elif info.kind == "container":
                    elem = info.elem or name_elem(pname)
                    if elem:
                        summ.param_elems[pname] = elem
                    domain = info.key_domain or name_domain(pname)
                    if domain:
                        summ.param_domains[pname] = domain
                elif info.kind in ("scalar", "none"):
                    unit = name_unit(pname)
                    if unit:
                        summ.param_units[pname] = unit
                    elem = name_elem(pname)
                    if elem:
                        summ.param_elems[pname] = elem
                    domain = name_domain(pname)
                    if domain:
                        summ.param_domains[pname] = domain
                # "other": deliberately no facts.
            rinfo = parse_annotation(fn.node.returns)
            if rinfo.kind == "unit":
                summ.return_unit, summ.return_pinned = rinfo.unit, True
            elif rinfo.kind == "container":
                summ.return_pinned = True
                summ.return_elem = rinfo.elem or name_elem(fn.name)
            elif rinfo.kind == "other":
                summ.return_pinned = True
            else:  # scalar annotation or none: conventions apply
                unit = name_unit(fn.name)
                summ.return_unit = unit
                summ.return_pinned = unit is not None
                summ.return_elem = name_elem(fn.name)
            self.summaries[fn.qualname] = summ

    # -- passes ------------------------------------------------------------

    def _run_pass(self, emit: bool) -> None:
        for relpath in sorted(self.sources):
            if relpath in self.SKIP_FILES:
                continue
            src = self.sources[relpath]
            module = self.index.modules.get(relpath)
            if module is None:
                continue
            flow = _FunctionFlow(self, src, module, None, None, emit)
            flow.run(src.tree.body)
            for fname in sorted(module.functions):
                self._analyze_function(src, module,
                                       module.functions[fname], emit)
            for cname in sorted(module.classes):
                cls = module.classes[cname]
                for mname in sorted(cls.methods):
                    self._analyze_function(src, module,
                                           cls.methods[mname], emit)

    def _analyze_function(self, src: SourceFile, module: ModuleInfo,
                          fn: FunctionInfo, emit: bool) -> None:
        flow = _FunctionFlow(self, src, module, fn.cls, fn, emit)
        flow.run(fn.node.body)
        summ = self.summaries[fn.qualname]
        if not summ.return_pinned:
            known = {u for u in flow.returns if u}
            summ.return_unit = known.pop() if len(known) == 1 else None
        if summ.return_elem is None:
            known = {e for e in flow.return_elems if e}
            if len(known) == 1:
                summ.return_elem = known.pop()

    def emit(self, rule: str, relpath: str, node: ast.AST,
             message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, relpath, lineno, col, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.violations.append(
            Violation(rule, relpath, lineno, col, message))


class _FunctionFlow:
    """Flow-sensitive unit inference over one function (or module) body.

    ``env`` maps a local name to its unit; a *missing* name falls back
    to naming conventions on read, while an explicit ``None`` entry is
    pinned-unknown (a non-scalar annotation silenced the convention).
    ``elems``/``domains`` carry container element units and mapping key
    spaces; ``local_types`` tracks ``x = Cls(...)`` instances so method
    calls resolve through the call graph.
    """

    def __init__(self, analysis: UnitsAnalysis, src: SourceFile,
                 module: ModuleInfo, enclosing_class: ClassInfo | None,
                 fn: FunctionInfo | None, emit: bool) -> None:
        self.analysis = analysis
        self.src = src
        self.module = module
        self.enclosing_class = enclosing_class
        self.emit_enabled = emit
        self.env: dict[str, str | None] = {}
        self.elems: dict[str, str] = {}
        self.domains: dict[str, str] = {}
        self.local_types: dict[str, ClassInfo] = {}
        self.returns: list[str | None] = []
        self.return_elems: list[str | None] = []
        if fn is not None:
            summ = analysis.summaries[fn.qualname]
            for pname, ann in zip(fn.params, fn.param_annotations):
                info = parse_annotation(ann)
                if info.kind == "unit":
                    self.env[pname] = info.unit
                elif info.kind in ("container", "other"):
                    self.env[pname] = None  # pinned unknown
                # scalar/none: fall back to conventions on read
            self.elems.update(summ.param_elems)
            self.domains.update(summ.param_domains)

    # -- statement dispatch ------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass,
                             ast.Break, ast.Continue, ast.Delete)):
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.returns.append(self.infer(node.value))
                self.return_elems.append(self.infer_elem(node.value))
            return
        if isinstance(node, ast.Assign):
            self.do_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self.do_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self.do_augassign(node)
        elif isinstance(node, ast.Expr):
            self.infer(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.infer(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.For):
            self.do_for(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.infer(item.context_expr)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Assert):
            self.infer(node.test)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.infer(node.exc)

    def do_assign(self, node: ast.Assign) -> None:
        unit = self.infer(node.value)
        elem = self.infer_elem(node.value)
        cls = self.analysis.index.constructed_class(node.value, self.module)
        for target in node.targets:
            self.bind(target, unit, elem, cls, node.value)

    def bind(self, target: ast.expr, unit: str | None, elem: str | None,
             cls: ClassInfo | None, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            if unit is not None:
                self.env[target.id] = unit
            else:
                self.env.pop(target.id, None)
            if elem is not None:
                self.elems[target.id] = elem
            else:
                self.elems.pop(target.id, None)
            if cls is not None:
                self.local_types[target.id] = cls
            else:
                self.local_types.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (value is not None and isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(target.elts)):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self.bind(sub_target, self.infer(sub_value),
                              self.infer_elem(sub_value),
                              self.analysis.index.constructed_class(
                                  sub_value, self.module), sub_value)
            else:
                for sub_target in target.elts:
                    self.bind(sub_target, None, None, None, None)
        elif isinstance(target, ast.Subscript):
            self.infer(target)  # index-domain check on the store
        elif isinstance(target, ast.Starred):
            self.bind(target.value, None, None, None, None)
        # plain attribute stores: name conventions cover reads

    def do_annassign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            value_unit = self.infer(node.value)
        else:
            value_unit = None
        info = parse_annotation(node.annotation)
        if not isinstance(node.target, ast.Name):
            return
        name = node.target.id
        if info.kind == "unit":
            if value_unit and info.unit and value_unit != info.unit:
                self.flag_mix(value_unit, info.unit, node,
                              f"assigned to '{name}' declared as")
            self.env[name] = info.unit
        elif info.kind == "container":
            self.env[name] = None
            if info.elem:
                self.elems[name] = info.elem
            if info.key_domain:
                self.domains[name] = info.key_domain
        elif info.kind == "other":
            self.env[name] = None
        elif value_unit is not None:
            self.env[name] = value_unit

    def do_augassign(self, node: ast.AugAssign) -> None:
        target_unit = self.infer(node.target)
        value_unit = self.infer(node.value)
        result = self.combine_binop(node.op, target_unit, value_unit,
                                    node.target, node.value, node)
        if isinstance(node.target, ast.Name):
            if result is not None:
                self.env[node.target.id] = result
            else:
                self.env.pop(node.target.id, None)

    def do_for(self, node: ast.For) -> None:
        self.infer(node.iter)
        elem = self.infer_elem(node.iter)
        target = node.target
        if isinstance(target, ast.Name):
            self.bind(target, elem, None, None, None)
        elif isinstance(target, ast.Tuple) and len(target.elts) == 2:
            first, second = None, None
            it = node.iter
            if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
                if it.func.attr == "items":
                    first = self.container_domain(it.func.value)
                    second = self.infer_elem(it.func.value)
            elif (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                  and it.func.id == "enumerate" and it.args):
                second = self.infer_elem(it.args[0])
            self.bind(target.elts[0], first, None, None, None)
            self.bind(target.elts[1], second, None, None, None)
        else:
            self.bind(target, None, None, None, None)
        self.run(node.body)
        self.run(node.orelse)

    # -- expression inference ----------------------------------------------

    def lookup(self, name: str) -> str | None:
        if name in self.env:
            return self.env[name]
        return name_unit(name)

    def infer(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            return self.infer_attribute(node)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.BinOp):
            return self.infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Compare):
            return self.infer_compare(node)
        if isinstance(node, ast.BoolOp):
            units = {self.infer(v) for v in node.values}
            return units.pop() if len(units) == 1 else None
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a, b = self.infer(node.body), self.infer(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Call):
            return self.infer_call(node)
        if isinstance(node, ast.Subscript):
            return self.infer_subscript(node)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.infer(elt)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key)
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.comp_elem(node)
            return None
        if isinstance(node, ast.DictComp):
            self.do_generators(node.generators)
            self.infer(node.key)
            self.infer(node.value)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value)
            return None
        if isinstance(node, ast.FormattedValue):
            return self.infer(node.value)
        if isinstance(node, ast.Starred):
            self.infer(node.value)
            return None
        if isinstance(node, ast.NamedExpr):
            unit = self.infer(node.value)
            self.bind(node.target, unit, self.infer_elem(node.value),
                      None, node.value)
            return unit
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.infer(node.value)
            return None
        if isinstance(node, ast.Slice):
            for bound in (node.lower, node.upper, node.step):
                if bound is not None:
                    self.infer(bound)
            return None
        return None

    def infer_attribute(self, node: ast.Attribute) -> str | None:
        if not isinstance(node.value, ast.Name):
            self.infer(node.value)
        cls = self.attr_owner_class(node)
        if cls is not None:
            info = self.analysis.attr_ann(cls, node.attr)
            if info is not None:
                if info.kind == "unit":
                    return info.unit
                return None  # annotated container/other: pinned unknown
        return name_unit(node.attr)

    def attr_owner_class(self, node: ast.Attribute) -> ClassInfo | None:
        owner = node.value
        if isinstance(owner, ast.Name):
            if owner.id in ("self", "cls"):
                return self.enclosing_class
            return self.local_types.get(owner.id)
        if (isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"
                and self.enclosing_class is not None):
            return self.analysis.index.class_attr_type(
                self.enclosing_class, owner.attr)
        return None

    def infer_binop(self, node: ast.BinOp) -> str | None:
        left_unit = self.infer(node.left)
        right_unit = self.infer(node.right)
        op = node.op
        if isinstance(op, ast.Mult):
            factor = _factor_kind(node.right) or _factor_kind(node.left)
            if factor is not None:
                other = (left_unit if _factor_kind(node.right) is not None
                         else right_unit)
                return self.apply_factor(factor, other, node)
            return self.combine_mult(left_unit, right_unit, node)
        if isinstance(op, (ast.Add, ast.Sub)):
            verb = "+" if isinstance(op, ast.Add) else "-"
            return self.combine_addsub(left_unit, right_unit, verb, node)
        if isinstance(op, ast.Div):
            if (_factor_kind(node.right) == "bytes"
                    and left_unit == "bytes"):
                return "kib"
            return None
        return None  # floordiv/mod/pow/shifts: unit not tracked

    def combine_binop(self, op: ast.operator, left_unit: str | None,
                      right_unit: str | None, left: ast.expr,
                      right: ast.expr, node: ast.AST) -> str | None:
        if isinstance(op, ast.Mult):
            factor = _factor_kind(right) or _factor_kind(left)
            if factor is not None:
                other = (left_unit if _factor_kind(right) is not None
                         else right_unit)
                return self.apply_factor(factor, other, node)
            return self.combine_mult(left_unit, right_unit, node)
        if isinstance(op, (ast.Add, ast.Sub)):
            verb = "+" if isinstance(op, ast.Add) else "-"
            return self.combine_addsub(left_unit, right_unit, verb, node)
        return None

    def combine_addsub(self, a: str | None, b: str | None, verb: str,
                       node: ast.AST) -> str | None:
        if a and b and a != b:
            self.flag_mix(a, b, node, verb)
            return None
        return a or b  # ``lsn + 1`` stays an lsn; ``ms + x`` stays ms

    def combine_mult(self, a: str | None, b: str | None,
                     node: ast.AST) -> str | None:
        if a and b:
            if a == b == "ms":
                self.analysis_emit("U001", node,
                                   "mixed-unit arithmetic: multiplying two "
                                   "ms values (ms * ms is not a latency)")
            elif a in ADDRESS_SPACES and b in ADDRESS_SPACES:
                self.analysis_emit("U002", node,
                                   "address-space confusion: multiplying "
                                   f"{a} by {b} addresses")
            return None  # unit products (rates etc.) are untracked
        known = a or b
        if known in ADDRESS_SPACES:
            # Scaling an address converts spaces (``lpn * subpages_per_page``
            # is an LSN): the destination space is unknown here.
            return None
        return known  # scaling by a unitless count preserves the unit

    def apply_factor(self, kind: str, other: str | None,
                     node: ast.AST) -> str | None:
        if kind == "bytes":
            if other == "bytes":
                self.analysis_emit(
                    "U003", node,
                    "KIB/MIB/GIB scale factor applied to a value already "
                    "in bytes (double scaling)")
                return None
            if other in (None, "kib"):
                return "bytes"
            return None
        if kind == "us2ms":
            if other in (None, "us"):
                return "ms"
            self.analysis_emit(
                "U003", node,
                f"US (us->ms) conversion factor applied to a {other} value")
            return None
        # sec2ms: there is no tracked "seconds" unit, so any known unit
        # under a SEC factor is a conversion applied to the wrong thing.
        if other is None:
            return "ms"
        self.analysis_emit(
            "U003", node,
            f"SEC (sec->ms) conversion factor applied to a {other} value")
        return None

    def infer_compare(self, node: ast.Compare) -> str | None:
        prev_unit = self.infer(node.left)
        for op, comp in zip(node.ops, node.comparators):
            comp_unit = self.infer(comp)
            if isinstance(op, (ast.In, ast.NotIn)):
                domain = self.container_domain(comp)
                if (domain and prev_unit in ADDRESS_SPACES
                        and prev_unit != domain):
                    self.analysis_emit(
                        "U002", node,
                        f"address-space confusion: {prev_unit} value "
                        f"tested for membership in a container keyed "
                        f"by {domain}")
            elif not isinstance(op, (ast.Is, ast.IsNot)):
                if prev_unit and comp_unit and prev_unit != comp_unit:
                    self.flag_mix(prev_unit, comp_unit, node, "compared to")
            prev_unit = comp_unit
        return None

    def infer_subscript(self, node: ast.Subscript) -> str | None:
        if isinstance(node.slice, ast.Slice):
            self.infer(node.slice)
            return None  # a slice of a container is still a container
        index_unit = self.infer(node.slice)
        domain = self.container_domain(node.value)
        if (domain and index_unit in ADDRESS_SPACES
                and index_unit != domain):
            self.analysis_emit(
                "U002", node,
                f"address-space confusion: {index_unit} value indexes a "
                f"mapping keyed by {domain}")
        if not isinstance(node.value, (ast.Name, ast.Attribute)):
            self.infer(node.value)
        return self.infer_elem(node.value)

    def infer_call(self, node: ast.Call) -> str | None:
        arg_units = [self.infer(arg) for arg in node.args]
        kw_units = {kw.arg: self.infer(kw.value) for kw in node.keywords
                    if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)
        func = node.func
        fname = _ann_name(func)
        if isinstance(func, ast.Attribute) and not isinstance(
                func.value, ast.Name):
            self.infer(func.value)
        if isinstance(func, ast.Name):
            builtin = self._builtin_unit(func.id, node, arg_units)
            if builtin is not NotImplemented:
                return builtin
        resolved = self.analysis.index.resolve_call(
            node, self.module, self.enclosing_class, self.local_types)
        if resolved is not None:
            summ = self.analysis.summaries.get(resolved.qualname)
            if summ is not None:
                self.check_args(node, resolved, summ, arg_units, kw_units)
                return summ.return_unit
            return None
        if fname is not None:
            return name_unit(fname)  # ``timing.duration_ms(...)`` -> ms
        return None

    def _builtin_unit(self, fname: str, node: ast.Call,
                      arg_units: list[str | None]):
        """Unit-preserving builtins; ``NotImplemented`` = not a builtin."""
        if fname == "sum":
            return self.infer_elem(node.args[0]) if node.args else None
        if fname in ("min", "max"):
            if len(node.args) == 1:
                return self.infer_elem(node.args[0])
            known = {u for u in arg_units if u}
            return known.pop() if len(known) == 1 else None
        if fname in ("abs", "round", "int", "float"):
            return arg_units[0] if arg_units else None
        if fname in ("len", "sorted", "list", "set", "tuple", "dict",
                     "frozenset", "reversed", "range", "enumerate",
                     "zip", "print", "isinstance", "repr", "str"):
            return None
        return NotImplemented

    def check_args(self, node: ast.Call, fn: FunctionInfo, summ: Summary,
                   arg_units: list[str | None],
                   kw_units: dict[str, str | None]) -> None:
        pairs: list[tuple[str, str | None, ast.expr]] = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if i >= len(fn.params):
                break
            pairs.append((fn.params[i], arg_units[i], arg))
        for kw in node.keywords:
            if kw.arg is not None:
                pairs.append((kw.arg, kw_units[kw.arg], kw.value))
        for pname, arg_unit, arg in pairs:
            declared = summ.param_units.get(pname)
            if declared and arg_unit and declared != arg_unit:
                rule = ("U002" if (declared in ADDRESS_SPACES
                                   or arg_unit in ADDRESS_SPACES)
                        else "U003")
                self.analysis_emit(
                    rule, arg,
                    f"{arg_unit} value passed to parameter '{pname}' of "
                    f"{fn.name}() which expects {declared}")
            declared_elem = summ.param_elems.get(pname)
            arg_elem = self.infer_elem(arg)
            if (declared_elem and arg_elem and declared_elem != arg_elem
                    and (declared_elem in ADDRESS_SPACES
                         or arg_elem in ADDRESS_SPACES)):
                self.analysis_emit(
                    "U002", arg,
                    f"container of {arg_elem} passed to parameter "
                    f"'{pname}' of {fn.name}() which expects "
                    f"{declared_elem} elements")

    # -- container facts ---------------------------------------------------

    def container_domain(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.domains.get(node.id) or name_domain(node.id)
        if isinstance(node, ast.Attribute):
            cls = self.attr_owner_class(node)
            if cls is not None:
                info = self.analysis.attr_ann(cls, node.attr)
                if info is not None and info.key_domain:
                    return info.key_domain
            return name_domain(node.attr)
        return None

    def infer_elem(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            if node.id in self.elems:
                return self.elems[node.id]
            return name_elem(node.id)
        if isinstance(node, ast.Attribute):
            cls = self.attr_owner_class(node)
            if cls is not None:
                info = self.analysis.attr_ann(cls, node.attr)
                if info is not None:
                    return info.elem
            return name_elem(node.attr)
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            known = {self.infer(elt) for elt in node.elts}
            known.discard(None)
            return known.pop() if len(known) == 1 else None
        if isinstance(node, ast.Call):
            return self._call_elem(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.comp_elem(node)
        if isinstance(node, ast.IfExp):
            a, b = self.infer_elem(node.body), self.infer_elem(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Slice):
            return self.infer_elem(node.value)
        return None

    def _call_elem(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "range":
                known = {self.infer(arg) for arg in node.args}
                known.discard(None)
                return known.pop() if len(known) == 1 else None
            if func.id in ("sorted", "list", "set", "tuple", "frozenset",
                           "reversed") and node.args:
                return self.infer_elem(node.args[0])
        if isinstance(func, ast.Attribute):
            if func.attr == "keys":
                return self.container_domain(func.value)
            if func.attr in ("values", "copy"):
                return self.infer_elem(func.value)
        resolved = self.analysis.index.resolve_call(
            node, self.module, self.enclosing_class, self.local_types)
        if resolved is not None:
            summ = self.analysis.summaries.get(resolved.qualname)
            return summ.return_elem if summ is not None else None
        fname = _ann_name(func)
        if fname is not None:
            return name_elem(fname)
        return None

    def comp_elem(self, node: "ast.ListComp | ast.SetComp | ast.GeneratorExp",
                  ) -> str | None:
        self.do_generators(node.generators)
        return self.infer(node.elt)

    def do_generators(self, generators: list[ast.comprehension]) -> None:
        for gen in generators:
            self.infer(gen.iter)
            elem = self.infer_elem(gen.iter)
            self.bind(gen.target, elem, None, None, None)
            for cond in gen.ifs:
                self.infer(cond)

    # -- reporting ---------------------------------------------------------

    def flag_mix(self, a: str, b: str, node: ast.AST, verb: str) -> None:
        if frozenset((a, b)) in CONVERTIBLE:
            self.analysis_emit(
                "U003", node,
                f"unconverted units: {a} {verb} {b} (scale with "
                f"KIB/US/SEC before crossing this boundary)")
        elif a in ADDRESS_SPACES or b in ADDRESS_SPACES:
            self.analysis_emit(
                "U002", node, f"address-space confusion: {a} {verb} {b}")
        else:
            self.analysis_emit(
                "U001", node, f"mixed-unit arithmetic: {a} {verb} {b}")

    def analysis_emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.emit_enabled:
            self.analysis.emit(rule, self.src.relpath, node, message)


#: One analysis per engine run, shared by the three U-rule instances
#: (ProjectContext hashes by identity precisely to make this sound).
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectContext, UnitsAnalysis]" = (
    WeakKeyDictionary())


def project_analysis(ctx: ProjectContext) -> UnitsAnalysis:
    """The (memoized) whole-tree dataflow analysis for one lint run."""
    analysis = _ANALYSIS_CACHE.get(ctx)
    if analysis is None:
        analysis = UnitsAnalysis(ctx.sources)
        _ANALYSIS_CACHE[ctx] = analysis
    return analysis


class _UnitsRule(Rule):
    """Base for the U-family: filter the shared analysis by rule id."""

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.sources:
            return
        for violation in project_analysis(ctx).violations:
            if violation.rule == self.id:
                yield violation


class MixedUnitArithmeticRule(_UnitsRule):
    """U001: arithmetic or comparison across unrelated dimensions."""

    id = "U001"
    title = "mixed-unit arithmetic (ms vs bytes vs counts)"


class AddressSpaceConfusionRule(_UnitsRule):
    """U002: LSN/LPN/PPN values crossing into the wrong address space."""

    id = "U002"
    title = "address-space confusion (lsn/lpn/ppn interchange)"


class LossyBoundaryCrossingRule(_UnitsRule):
    """U003: convertible units crossing a boundary without their factor."""

    id = "U003"
    title = "unconverted or double-converted unit boundary crossing"
