"""Interprocedural effect & exception-safety dataflow (rules M001–M002).

PR 7's differential suite caught two *torn-state* bugs in the array
kernel: a rejected program had already advanced ``next_page``, and an
empty ``invalidate_many`` corrupted ``pages_with_valid``.  Both are the
same shape — **a state write reachable before a raise-capable
validation** — and both silently break the byte-identity guarantee the
cache/bench/golden stack depends on.  The structure-of-arrays refactor
added a second invariant: every ``Block`` fact is split into a scalar
mirror (``pass_counts``, ``state``, the page bitmasks …) and an
authoritative :class:`~repro.nand.state.RegionState` column, and the two
must update in lock-step inside the same method.

This module turns both contracts into checked facts on top of the
:class:`~repro.analysis.callgraph.ProjectIndex` symbol table:

* every function gets an **effect summary** — which state attributes /
  array columns it writes (``self.x = …``, ``self.arr[i] = …``, writes
  through local aliases of region columns) and whether any path can
  raise — and the raise/write bits propagate across resolved call edges
  to a fixpoint, exactly like :mod:`repro.analysis.units_flow` does for
  units;
* a function that *raises but never writes* (``config.validate()``,
  ``Block.verify_array_state``) is a **pure validator**: calling it is a
  validation point, while calling a function that both raises and writes
  is a state *transition* and is deliberately not treated as one;
* two rule families fire on the summaries:

  ======== ========================================================
  ``M001`` a ``nand/``/``ftl/`` method performs a state write that is
           reachable *before* a raise statement or a pure-validator
           call (the PR 7 bug shape: partial mutation on the
           exception path)
  ``M002`` a ``Block`` scalar mirror is written without the paired
           ``RegionState`` column in the same method (or vice versa)
           outside the allowlisted spec twin
  ======== ========================================================

``__init__`` methods are exempt from both rules: a constructor that
raises discards the half-built object, so torn state is unobservable,
and mirrors initialise against a freshly-zeroed region.  The analysis is
deliberately conservative: unresolved calls are assumed to neither raise
nor write, so unknown code never fires a rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping
from weakref import WeakKeyDictionary

from .callgraph import ClassInfo, FunctionInfo, ModuleInfo, ProjectIndex
from .core import ProjectContext, Rule, SourceFile, Violation

#: Flat :class:`~repro.nand.state.RegionState` columns (the
#: authoritative arrays of the structure-of-arrays kernel).
REGION_COLUMNS = frozenset({
    "programmed", "valid", "slot_lsn", "slot_time", "slot_program_time",
    "disturb_in", "disturb_nb", "program_count", "page_updated",
    "erase_count", "state_code", "level",
})

#: ``Block`` scalar/bitmask mirror -> the ``RegionState`` column it
#: shadows.  Several occupancy mirrors derive from the same column
#: (``n_valid``/``page_valid``/``pages_with_valid`` all shadow
#: ``valid``); writing any one of them pairs with that column.
MIRROR_COLUMN: dict[str, str] = {
    "prog_mask": "programmed",
    "valid_mask": "valid",
    "pass_counts": "program_count",
    "erase_count": "erase_count",
    "state": "state_code",
    "level": "level",
    "n_valid": "valid",
    "n_invalid": "valid",
    "page_valid": "valid",
    "pages_with_valid": "valid",
    "n_programmed": "programmed",
    "page_programmed": "programmed",
}

#: Columns that have at least one scalar mirror (the column->mirror
#: direction of M002 only applies to these; ``slot_time`` and the
#: disturb counters are array-only by design).
MIRRORED_COLUMNS = frozenset(MIRROR_COLUMN.values())

#: Watched state written through objects other than ``self`` (for M001's
#: write tracking: ``block.read_count += 1`` in ``nand/flash.py`` is as
#: much a state write as ``self.read_count += 1`` inside the block).
WATCHED_ATTRS = (REGION_COLUMNS | frozenset(MIRROR_COLUMN)
                 | frozenset({"next_page", "alloc_time", "content_epoch",
                              "read_count"}))

#: Directories whose methods M001 checks (the mutable simulator state).
M001_PREFIXES = ("nand/", "ftl/")

#: Files whose functions M002 checks (mirrors only exist on ``Block``).
M002_PREFIX = "nand/"

#: The pure-python spec twin keeps no mirrors by design — its derived
#: quantities are recomputed properties, which is exactly what makes the
#: kernel's mirror maintenance falsifiable.
M002_ALLOWED_FILES = frozenset({"nand/reference.py"})


@dataclass
class WriteSite:
    """One classified state write inside a function body."""

    kind: str       #: ``"column"`` | ``"mirror"`` | ``"self"`` | ``"watched"``
    name: str       #: attribute / column name written
    node: ast.AST   #: the write target (for reporting)


@dataclass
class EffectSummary:
    """Interprocedural effect facts about one function."""

    #: Direct state writes in this body, in source order.
    writes: list[WriteSite] = field(default_factory=list)
    #: A ``raise`` statement occurs directly in this body.
    raises_direct: bool = False
    #: Qualnames of resolved callees (the call edges).
    calls: list[str] = field(default_factory=list)
    #: Fixpoint bits: some path through this function (or its callees)
    #: can raise / can write state.
    raises: bool = False
    writes_any: bool = False

    @property
    def pure_validator(self) -> bool:
        """Raise-capable but side-effect free: calling it is a check."""
        return self.raises and not self.writes_any


class _AliasMap:
    """Local aliases of region stores inside one function.

    The kernel's hot paths hoist array attribute loads into locals
    (``region = self.region``, ``valid_f = region.valid``) before the
    per-slot stores; writes through those locals are still column
    writes.  A single pre-pass over the body collects them.
    """

    def __init__(self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef):
        #: Local names bound to a ``*.region`` expression.
        self.regions: set[str] = set()
        #: Local name -> region column it aliases.
        self.columns: dict[str, str] = {}
        for node in ast.walk(fn_node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            value = node.value
            if self.is_region_expr(value):
                self.regions.add(target)
            elif (isinstance(value, ast.Attribute)
                  and value.attr in REGION_COLUMNS
                  and self.is_region_expr(value.value)):
                self.columns[target] = value.attr

    def is_region_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` denotes a :class:`RegionState` store."""
        if isinstance(node, ast.Attribute):
            return node.attr == "region"
        if isinstance(node, ast.Name):
            return node.id in self.regions
        return False


def classify_write(target: ast.expr, aliases: _AliasMap) -> WriteSite | None:
    """Classify one write target as a state write, if it is one."""
    if isinstance(target, ast.Subscript):
        inner = target.value
        if isinstance(inner, ast.Name):
            col = aliases.columns.get(inner.id)
            if col is not None:
                return WriteSite("column", col, target)
            return None  # plain local container
        return classify_write(inner, aliases)
    if isinstance(target, ast.Attribute):
        attr = target.attr
        if attr in REGION_COLUMNS and aliases.is_region_expr(target.value):
            return WriteSite("column", attr, target)
        if attr in MIRROR_COLUMN:
            return WriteSite("mirror", attr, target)
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return WriteSite("self", attr, target)
        if attr in WATCHED_ATTRS:
            return WriteSite("watched", attr, target)
    return None


def _write_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Write-target expressions of one statement."""
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        yield stmt.target
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


def _flatten_targets(targets: Iterator[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(iter(target.elts))
        elif isinstance(target, ast.Starred):
            yield target.value
        else:
            yield target


def _own_statements(fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
                    ) -> Iterator[ast.stmt]:
    """Statements of ``fn_node``'s own body, nested defs excluded."""
    pending = list(fn_node.body)
    while pending:
        stmt = pending.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                pending.append(child)
            else:
                pending.extend(c for c in ast.walk(child)
                               if isinstance(c, ast.stmt))


class EffectsAnalysis:
    """One whole-tree effect/exception dataflow shared by the M-rules."""

    def __init__(self, sources: Mapping[str, SourceFile]) -> None:
        self.sources = sources
        self.index = ProjectIndex.build(sources)
        self.summaries: dict[str, EffectSummary] = {}
        self.violations: list[Violation] = []
        self._emitted: set[tuple[str, str, int, int, str]] = set()
        self._aliases: dict[str, _AliasMap] = {}
        self._local_types: dict[str, dict[str, ClassInfo]] = {}
        self._build_summaries()
        self._propagate()
        self._check_m001()
        self._check_m002()

    # -- summaries ---------------------------------------------------------

    def _function_types(self, fn: FunctionInfo,
                        module: ModuleInfo) -> dict[str, ClassInfo]:
        """Instance classes of locals/params, for call resolution."""
        types: dict[str, ClassInfo] = dict(
            self.index.param_types(fn, module))
        for stmt in _own_statements(fn.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            cls = self.index.constructed_class(stmt.value, module)
            if cls is not None:
                types[stmt.targets[0].id] = cls
        return types

    def _build_summaries(self) -> None:
        for fn in self.index.iter_functions():
            module = self.index.modules[fn.relpath]
            aliases = _AliasMap(fn.node)
            self._aliases[fn.qualname] = aliases
            types = self._function_types(fn, module)
            self._local_types[fn.qualname] = types
            summ = EffectSummary()
            for stmt in sorted(_own_statements(fn.node),
                               key=lambda s: (s.lineno, s.col_offset)):
                if isinstance(stmt, ast.Raise):
                    summ.raises_direct = True
                for target in _flatten_targets(_write_targets(stmt)):
                    site = classify_write(target, aliases)
                    if site is not None:
                        summ.writes.append(site)
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        resolved = self.index.resolve_call(
                            node, module, fn.cls, types)
                        if resolved is not None:
                            summ.calls.append(resolved.qualname)
            summ.raises = summ.raises_direct
            summ.writes_any = bool(summ.writes)
            self.summaries[fn.qualname] = summ

    def _propagate(self) -> None:
        """Fixpoint of the raise/write bits over resolved call edges."""
        for _ in range(20):
            changed = False
            for qual in sorted(self.summaries):
                summ = self.summaries[qual]
                for callee in summ.calls:
                    other = self.summaries.get(callee)
                    if other is None:
                        continue
                    if other.raises and not summ.raises:
                        summ.raises = changed = True
                    if other.writes_any and not summ.writes_any:
                        summ.writes_any = changed = True
            if not changed:
                return

    # -- M001: write reachable before a raise-capable validation -----------

    def _check_m001(self) -> None:
        for fn in self.index.iter_functions():
            if not fn.relpath.startswith(M001_PREFIXES):
                continue
            if fn.name == "__init__":
                continue
            module = self.index.modules[fn.relpath]
            flow = _TornStateFlow(self, fn, module)
            flow.walk(fn.node.body)

    # -- M002: mirror/column writes must pair up ----------------------------

    def _check_m002(self) -> None:
        for fn in self.index.iter_functions():
            if not fn.relpath.startswith(M002_PREFIX):
                continue
            if fn.relpath in M002_ALLOWED_FILES or fn.name == "__init__":
                continue
            summ = self.summaries[fn.qualname]
            mirrors: dict[str, WriteSite] = {}
            columns: dict[str, WriteSite] = {}
            for site in summ.writes:
                if site.kind == "mirror":
                    mirrors.setdefault(site.name, site)
                elif site.kind == "column":
                    columns.setdefault(site.name, site)
            for name, site in sorted(mirrors.items()):
                column = MIRROR_COLUMN[name]
                if column not in columns:
                    self.emit(
                        "M002", fn.relpath, site.node,
                        f"Block mirror '{name}' written in {fn.name}() "
                        f"without the paired RegionState column "
                        f"'{column}' — scalar mirrors and array columns "
                        f"must update in lock-step in the same method")
            for name, site in sorted(columns.items()):
                if name not in MIRRORED_COLUMNS:
                    continue
                paired = [m for m, c in MIRROR_COLUMN.items() if c == name]
                if not any(m in mirrors for m in paired):
                    self.emit(
                        "M002", fn.relpath, site.node,
                        f"RegionState column '{name}' written in "
                        f"{fn.name}() without any paired Block mirror "
                        f"({'/'.join(sorted(paired))}) — scalar mirrors "
                        f"and array columns must update in lock-step in "
                        f"the same method")

    # -- reporting ---------------------------------------------------------

    def emit(self, rule: str, relpath: str, node: ast.AST,
             message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, relpath, lineno, col, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.violations.append(
            Violation(rule, relpath, lineno, col, message))


class _TornStateFlow:
    """Ordered walk of one function body for M001.

    Tracks the first state write per attribute along the linear
    statement order; every ``raise`` (outside ``try`` bodies that have
    handlers) and every call to a pure validator is a raise point — if
    any write precedes it, the method can leave the object partially
    mutated on the exception path.  Branches merge their writes unless
    they terminate (an early ``return`` path's writes never reach a
    later raise); loop bodies are walked twice so a second iteration's
    raise sees the first iteration's writes (the partially-applied-batch
    shape ``invalidate_many`` fixed by validating all slots first).
    """

    def __init__(self, analysis: EffectsAnalysis, fn: FunctionInfo,
                 module: ModuleInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.aliases = analysis._aliases[fn.qualname]
        self.types = analysis._local_types[fn.qualname]
        #: attr name -> first write node on some path reaching here.
        self.writes: dict[str, ast.AST] = {}
        self.try_depth = 0

    # -- statement dispatch ------------------------------------------------

    def walk(self, body: list[ast.stmt]) -> bool:
        """Walk ``body``; True when control cannot fall off its end."""
        for stmt in body:
            if self.stmt(stmt):
                return True
        return False

    def stmt(self, node: ast.stmt) -> bool:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return False
        if isinstance(node, (ast.Return, ast.Break, ast.Continue)):
            if isinstance(node, ast.Return) and node.value is not None:
                self.visit_calls(node.value)
            return True
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self.visit_calls(node.exc)
            self.raise_point(node, "this raise")
            return True
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                             ast.Delete)):
            value = getattr(node, "value", None)
            if value is not None:
                self.visit_calls(value)
            for target in _flatten_targets(_write_targets(node)):
                self.visit_calls(target)  # index expressions may validate
                site = classify_write(target, self.aliases)
                if site is not None:
                    self.writes.setdefault(site.name, target)
            return False
        if isinstance(node, ast.Expr):
            self.visit_calls(node.value)
            return False
        if isinstance(node, ast.If):
            self.visit_calls(node.test)
            return self.branches([node.body, node.orelse])
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            head = node.iter if isinstance(node, (ast.For, ast.AsyncFor)) \
                else node.test
            self.visit_calls(head)
            # Two passes: the second sees the first iteration's writes,
            # so a validation raise inside the loop body flags when an
            # earlier iteration already mutated state.
            self.walk(node.body)
            self.walk(node.body)
            self.walk(node.orelse)
            return False
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.visit_calls(item.context_expr)
            return self.walk(node.body)
        if isinstance(node, ast.Try):
            if node.handlers:
                self.try_depth += 1
                self.walk(node.body)
                self.try_depth -= 1
            else:
                self.walk(node.body)
            for handler in node.handlers:
                self.walk(handler.body)
            self.walk(node.orelse)
            self.walk(node.finalbody)
            return False
        if isinstance(node, ast.Assert):
            # ``assert`` is a debugging aid stripped under ``-O``; the
            # simulator's real validations raise typed errors.
            self.visit_calls(node.test)
            return False
        return False

    def branches(self, bodies: list[list[ast.stmt]]) -> bool:
        """Walk alternative branches; merge non-terminating writes."""
        saved = dict(self.writes)
        merged = dict(saved)
        all_terminate = True
        for body in bodies:
            self.writes = dict(saved)
            terminated = self.walk(body)
            if not terminated:
                all_terminate = False
                merged.update(self.writes)
        self.writes = merged
        return all_terminate

    # -- raise points ------------------------------------------------------

    def visit_calls(self, expr: ast.expr) -> None:
        """Treat calls to pure validators inside ``expr`` as raise points."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.analysis.index.resolve_call(
                node, self.module, self.fn.cls, self.types)
            if resolved is None or resolved.qualname == self.fn.qualname:
                continue
            summ = self.analysis.summaries.get(resolved.qualname)
            if summ is not None and summ.pure_validator:
                self.raise_point(
                    node, f"the raise-capable validation call "
                          f"{resolved.name}()")

    def raise_point(self, node: ast.AST, what: str) -> None:
        if self.try_depth or not self.writes:
            return
        attr = min(self.writes,
                   key=lambda a: getattr(self.writes[a], "lineno", 0))
        wnode = self.writes[attr]
        self.analysis.emit(
            "M001", self.fn.relpath, node,
            f"state write of '{attr}' (line "
            f"{getattr(wnode, 'lineno', '?')}) is reachable before "
            f"{what} in {self.fn.name}() — an exception here leaves the "
            f"object partially mutated; validate before mutating")


#: One analysis per engine run, shared by the two M-rule instances
#: (ProjectContext hashes by identity precisely to make this sound).
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectContext, EffectsAnalysis]" = (
    WeakKeyDictionary())


def project_effects(ctx: ProjectContext) -> EffectsAnalysis:
    """The (memoized) whole-tree effect analysis for one lint run."""
    analysis = _ANALYSIS_CACHE.get(ctx)
    if analysis is None:
        analysis = EffectsAnalysis(ctx.sources)
        _ANALYSIS_CACHE[ctx] = analysis
    return analysis


class _EffectsRule(Rule):
    """Base for the M-family: filter the shared analysis by rule id."""

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.sources:
            return
        for violation in project_effects(ctx).violations:
            if violation.rule == self.id:
                yield violation


class TornStateWriteRule(_EffectsRule):
    """M001: state write reachable before a raise-capable validation."""

    id = "M001"
    title = "state write reachable before a raise-capable validation"


class MirrorColumnPairRule(_EffectsRule):
    """M002: Block mirror and RegionState column must write in lock-step."""

    id = "M002"
    title = "Block scalar mirror / RegionState column written unpaired"
