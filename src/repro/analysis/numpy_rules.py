"""Numpy bit-identity discipline (rules N001–N002).

The batched pricing kernels (``rber_many``/``decode_ms_many``, the
flash-state columns they read) are only *byte-identical* to the scalar
reference paths while two disciplines hold:

* **dtype discipline** — every array is constructed with an explicit
  dtype and every float accumulator is float64.  A dtype-less
  ``np.array([...])`` promotes by inspecting its contents, so a single
  int-looking row silently flips a float column to int64; float32
  intermediates round differently from the scalar float64 path.
* **reduction-order discipline** — ``np.sum`` over an unsorted
  fancy-indexed gather and python ``sum()`` over a float array
  accumulate in an order (and with pairwise blocking) that the mirrored
  scalar loops do not; the kernel contract is ``ufunc.reduceat`` over
  sorted spans or an explicit mirrored loop.

Both rules only fire inside the byte-identity-gated modules
(:data:`GATED_FILES`): the golden pins diff those files' outputs byte
for byte, so a violation there is a real identity hazard, while e.g.
trace synthesis is free to use idiomatic numpy.  Generator-expression
``sum(...)`` stays allowed — it is a python-object fold over an
explicit, deterministic iteration order, which is exactly the shape the
consistency checkers use.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Rule, SourceFile, Violation

#: Modules whose outputs the golden/bench stack pins byte-for-byte.
GATED_FILES = frozenset({
    "nand/state.py",
    "nand/flash.py",
    "error/rber.py",
    "error/ecc.py",
})

#: Constructors whose result dtype depends on the input unless pinned.
#: (``*_like`` and ``concatenate`` inherit their operand's dtype and are
#: exempt — the operand was already checked at its construction site.)
CONSTRUCTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "fromiter", "arange", "linspace", "geomspace", "logspace",
})

#: Float dtypes narrower (or platform-wobblier) than the contract.
NARROW_FLOATS = frozenset({
    "float16", "float32", "half", "single", "longdouble", "float128",
})


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names the module binds to the numpy package."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _np_attr(node: ast.expr, aliases: set[str]) -> str | None:
    """``np.<attr>`` attribute name when ``node`` is one, else None."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id in aliases):
        return node.attr
    return None


def _is_dtype_expr(node: ast.expr, aliases: set[str]) -> bool:
    """Whether ``node`` plausibly denotes a dtype (``np.int64``,
    ``bool``, ``"float64"``)."""
    attr = _np_attr(node, aliases)
    if attr is not None:
        return (attr.startswith(("float", "int", "uint", "bool", "complex"))
                or attr in ("intp", "half", "single", "double",
                            "longdouble", "str_", "bytes_"))
    if isinstance(node, ast.Name):
        return node.id in ("bool", "int", "float", "complex", "str")
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    return False


def _has_explicit_dtype(call: ast.Call, aliases: set[str]) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    return any(_is_dtype_expr(arg, aliases) for arg in call.args)


def _narrow_float_name(node: ast.expr, aliases: set[str]) -> str | None:
    """The narrow float dtype ``node`` names, if it names one."""
    attr = _np_attr(node, aliases)
    if attr in NARROW_FLOATS:
        return f"np.{attr}"
    if isinstance(node, ast.Constant) and node.value in NARROW_FLOATS:
        return repr(node.value)
    return None


def _is_fancy_index(index: ast.expr) -> bool:
    """Whether a subscript index is a gather (array/list of positions)
    rather than a scalar or slice."""
    if isinstance(index, (ast.Constant, ast.Slice)):
        return False
    if isinstance(index, ast.Tuple):
        return any(_is_fancy_index(elt) for elt in index.elts)
    if isinstance(index, ast.UnaryOp):
        return _is_fancy_index(index.operand)
    # Name / Attribute / Call / List / BinOp index: an index array (or a
    # mask) as far as a static pass can tell.  Comparisons like
    # ``arr[arr > 0]`` are boolean masks — those gather in ascending
    # position order and stay deterministic, so they are exempt.
    if isinstance(index, ast.Compare):
        return False
    return True


class _NumpyRule(Rule):
    """Base: iterate gated files only, with the module's numpy aliases."""

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        if src.relpath not in GATED_FILES:
            return
        aliases = _numpy_aliases(src.tree)
        yield from self.check_gated(src, aliases)

    def check_gated(self, src: SourceFile,
                    aliases: set[str]) -> Iterator[Violation]:
        raise NotImplementedError


class DtypeDisciplineRule(_NumpyRule):
    """N001: explicit, contract-width dtypes in byte-identity modules."""

    id = "N001"
    title = "dtype-less or narrow-float numpy construction in a byte-identity-gated module"

    def check_gated(self, src: SourceFile,
                    aliases: set[str]) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                ctor = (_np_attr(node.func, aliases)
                        if isinstance(node.func, ast.Attribute) else None)
                if (ctor in CONSTRUCTORS
                        and not _has_explicit_dtype(node, aliases)):
                    yield Violation(
                        self.id, src.relpath, node.lineno, node.col_offset,
                        f"dtype-less np.{ctor}() in a byte-identity-gated "
                        f"module — implicit promotion can flip the array "
                        f"dtype on content changes; pass dtype=np.float64 "
                        f"(or the intended integer dtype) explicitly")
            if isinstance(node, ast.Attribute):
                narrow = _narrow_float_name(node, aliases)
                if narrow is not None:
                    yield Violation(
                        self.id, src.relpath, node.lineno, node.col_offset,
                        f"narrow float dtype {narrow} in a "
                        f"byte-identity-gated module — pricing kernels "
                        f"are float64 end-to-end; float32 intermediates "
                        f"round differently from the mirrored scalar path")
            if isinstance(node, ast.Call):
                # dtype="float32" string form (the np.float32 attribute
                # form is reported when the walk reaches the attribute).
                for kw in node.keywords:
                    if kw.arg != "dtype" or isinstance(kw.value,
                                                       ast.Attribute):
                        continue
                    name = _narrow_float_name(kw.value, aliases)
                    if name is not None:
                        yield Violation(
                            self.id, src.relpath,
                            kw.value.lineno, kw.value.col_offset,
                            f"narrow float dtype {name} in a "
                            f"byte-identity-gated module — pricing "
                            f"kernels are float64 end-to-end")


class ReductionOrderRule(_NumpyRule):
    """N002: no order-dependent reductions in byte-identity modules."""

    id = "N002"
    title = "order-dependent reduction in a byte-identity-gated module"

    def check_gated(self, src: SourceFile,
                    aliases: set[str]) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # arr[idx].sum() — gather then reduce.
            if (isinstance(func, ast.Attribute) and func.attr == "sum"
                    and isinstance(func.value, ast.Subscript)
                    and _is_fancy_index(func.value.slice)):
                yield Violation(
                    self.id, src.relpath, node.lineno, node.col_offset,
                    "sum() over a fancy-indexed gather in a "
                    "byte-identity-gated module — gather order is the "
                    "index array's order, not storage order; use "
                    "ufunc.reduceat over sorted spans or the mirrored "
                    "scalar loop")
            # np.sum(arr[idx]) — same shape through the module function.
            elif (_np_attr(func, aliases) == "sum" and node.args
                    and isinstance(node.args[0], ast.Subscript)
                    and _is_fancy_index(node.args[0].slice)):
                yield Violation(
                    self.id, src.relpath, node.lineno, node.col_offset,
                    "np.sum() over a fancy-indexed gather in a "
                    "byte-identity-gated module — use ufunc.reduceat "
                    "over sorted spans or the mirrored scalar loop")
            # Builtin sum() folding an array object; the explicit
            # generator/comprehension fold stays allowed.
            elif (isinstance(func, ast.Name) and func.id == "sum"
                    and node.args
                    and not isinstance(node.args[0],
                                       (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp))):
                yield Violation(
                    self.id, src.relpath, node.lineno, node.col_offset,
                    "builtin sum() over an array object in a "
                    "byte-identity-gated module — element type and fold "
                    "order are implicit; use an explicit generator "
                    "expression or the kernel's reduceat/mirror pattern")
