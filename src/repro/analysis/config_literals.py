"""C001 — magic size/latency literals in modelled code.

Table 2 of the paper is the single source of truth for device timings
and geometry; ``repro.config`` carries it and ``repro.units`` provides
the byte-size vocabulary.  A raw ``4096`` or ``0.3`` inside ``ftl/``,
``sim/`` or ``error/`` is a config value that escaped the config — it
silently stops tracking Table-2 overrides and scaled configurations.

The rule is deliberately value-targeted rather than "all numbers are
magic": it flags the power-of-two byte sizes and the exact Table-2
latencies, the two literal families that have a designated home
(``repro.units`` / ``TimingConfig``).  Declared defaults — dataclass
field defaults and module-level ``UPPER_CASE`` constants — are exempt;
they *are* configuration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Rule, SourceFile, Violation

#: Byte sizes that must be spelled via ``repro.units`` (``4 * KIB``,
#: ``kib(16)``) or taken from ``GeometryConfig``.
SIZE_LITERALS = frozenset({
    512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
})
#: Exact Table-2 operation latencies (ms) owned by ``TimingConfig``.
TIMING_LITERALS = frozenset({
    0.025, 0.05, 0.3, 0.9, 10.0, 0.0005, 0.0968, 0.04,
})


class ConfigLiteralRule(Rule):
    """C001: sizes/latencies come from ``repro.config`` / ``repro.units``."""

    id = "C001"
    title = "magic size/latency literal outside repro.config"

    #: Packages that model the device; first path component.
    TARGET_DIRS = frozenset({"ftl", "sim", "error"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        parts = src.relpath.split("/")
        if len(parts) < 2 or parts[0] not in self.TARGET_DIRS:
            return
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(src.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, int):
                if value not in SIZE_LITERALS:
                    continue
                home = "repro.units (e.g. n * KIB) or GeometryConfig"
            else:
                if value not in TIMING_LITERALS:
                    continue
                home = "TimingConfig"
            if self._declared_default(node, parents):
                continue
            yield Violation(
                self.id, src.relpath, node.lineno, node.col_offset,
                f"magic literal {value!r}: take it from {home} so Table-2 "
                f"overrides and scaled configs stay in effect")

    @staticmethod
    def _declared_default(node: ast.AST,
                          parents: dict[ast.AST, ast.AST]) -> bool:
        """True when the literal is a declared default, not buried logic:
        a dataclass-style ``AnnAssign`` default, a module/class-level
        ``UPPER_CASE = ...`` constant, or a keyword/positional default in
        a function signature."""
        cur: ast.AST | None = node
        while cur is not None:
            parent = parents.get(cur)
            if isinstance(parent, ast.AnnAssign):
                return True
            if isinstance(parent, ast.arguments):
                return True
            if isinstance(parent, ast.Assign):
                names = [t.id for t in parent.targets
                         if isinstance(t, ast.Name)]
                if names and all(name.isupper() for name in names):
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Module)):
                return False
            cur = parent
        return False
    # repro-lint note: docstrings are string constants and never match.
