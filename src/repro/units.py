"""Size and time unit helpers.

Conventions used across the library:

* **sizes** are plain integers in bytes,
* **times and latencies** are floats in **milliseconds** (the unit used by
  Table 2 of the paper),
* logical space is addressed in 4 KiB *subpages* (LSN) grouped into 16 KiB
  *logical pages* (LPN).
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Milliseconds per microsecond.
US: float = 1e-3
#: Milliseconds per second.
SEC: float = 1e3


def kib(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * GIB)


def bytes_to_kib(n: int) -> float:
    """Return ``n`` bytes expressed in KiB."""
    return n / KIB


def bytes_to_mib(n: int) -> float:
    """Return ``n`` bytes expressed in MiB."""
    return n / MIB


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ceil_div(value, alignment) * alignment


def ms_to_us(t_ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return t_ms * 1e3


def us_to_ms(t_us: float) -> float:
    """Convert microseconds to milliseconds."""
    return t_us * 1e-3


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}{suffix}"
            return f"{value:.2f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_ms(t_ms: float) -> str:
    """Human-readable latency: microseconds below 1 ms, otherwise ms."""
    if t_ms < 1.0:
        return f"{t_ms * 1e3:.2f}us"
    if t_ms < 1e3:
        return f"{t_ms:.3f}ms"
    return f"{t_ms / 1e3:.3f}s"
