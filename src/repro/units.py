"""Size and time unit helpers, and the checked unit vocabulary.

Conventions used across the library:

* **sizes** are plain integers in bytes,
* **times and latencies** are floats in **milliseconds** (the unit used by
  Table 2 of the paper),
* logical space is addressed in 4 KiB *subpages* (LSN) grouped into 16 KiB
  *logical pages* (LPN); physical space is PPN/slot coordinates.

The ``Annotated`` aliases below (:data:`Ms`, :data:`Bytes`, :data:`Lsn`,
…) turn those conventions into *checked interfaces*: annotate a public
signature with them and ``repro-ssd lint``'s interprocedural unit checker
(rules U001–U003, see ``docs/STATIC_ANALYSIS.md``) propagates the
dimension through assignments, arithmetic and call edges, flagging mixed
arithmetic, address-space confusion and missed scale conversions.  At
runtime the aliases are their underlying ``int``/``float`` — annotating
costs nothing.
"""

from __future__ import annotations

from typing import Annotated, Any, TypeAlias


class Unit:
    """Dimension marker carried inside the ``Annotated`` unit aliases.

    The static analyzer matches the *alias names* (``Ms``, ``Lsn``, …)
    in source; the marker exists so the dimension also survives to
    runtime introspection (``typing.get_type_hints(..., include_extras=True)``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Unit({self.name!r})"


#: Modelled latency / simulated clock value in milliseconds (Table 2).
Ms: TypeAlias = Annotated[float, Unit("ms")]
#: Size in bytes (the only integer size unit used in interfaces).
Bytes: TypeAlias = Annotated[int, Unit("bytes")]
#: Size expressed in KiB — multiply by :data:`KIB` before it meets a
#: :data:`Bytes` interface.
Kib: TypeAlias = Annotated[float, Unit("kib")]
#: Logical subpage number (4 KiB granularity).
Lsn: TypeAlias = Annotated[int, Unit("lsn")]
#: Logical page number (16 KiB granularity): ``lpn = lsn // subpages_per_page``.
Lpn: TypeAlias = Annotated[int, Unit("lpn")]
#: Physical page coordinate (flat physical page index / page-in-block).
Ppn: TypeAlias = Annotated[int, Unit("ppn")]
#: Count of 4 KiB subpages (capacities, transfer sizes in subpage units).
SubpageCount: TypeAlias = Annotated[int, Unit("subpages")]
#: Program/erase cycle count (wear).
PeCycles: TypeAlias = Annotated[int, Unit("pe")]

# Array-column vocabulary: the structure-of-arrays kernel
# (``nand/state.py``) stores whole columns of the scalar units above.
# The underlying type is ``Any`` on purpose — columns are numpy arrays
# (or ``None`` for region variants that do not track them), and the
# unit checker only consumes the *element* dimension.

#: Column of per-slot timestamps in milliseconds (float64).
MsArray: TypeAlias = Annotated[Any, Unit("ms[]")]
#: Column of logical subpage numbers (int64; ``NO_LSN`` sentinel).
LsnArray: TypeAlias = Annotated[Any, Unit("lsn[]")]
#: Column of program/erase cycle counts (int64).
PeCyclesArray: TypeAlias = Annotated[Any, Unit("pe[]")]
#: Column of 4 KiB subpage counts.
SubpageCountArray: TypeAlias = Annotated[Any, Unit("subpages[]")]

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Milliseconds per microsecond.
US: float = 1e-3
#: Milliseconds per second.
SEC: float = 1e3


def kib(n: float) -> Bytes:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> Bytes:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> Bytes:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * GIB)


def bytes_to_kib(n: Bytes) -> Kib:
    """Return ``n`` bytes expressed in KiB."""
    return n / KIB


def bytes_to_mib(n: Bytes) -> float:
    """Return ``n`` bytes expressed in MiB."""
    return n / MIB


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ceil_div(value, alignment) * alignment


def ms_to_us(t_ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return t_ms * 1e3


def us_to_ms(t_us: float) -> Ms:
    """Convert microseconds to milliseconds."""
    return t_us * 1e-3


def fmt_bytes(n: Bytes) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}{suffix}"
            return f"{value:.2f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_ms(t_ms: Ms) -> str:
    """Human-readable latency: microseconds below 1 ms, otherwise ms."""
    if t_ms < 1.0:
        return f"{t_ms * 1e3:.2f}us"
    if t_ms < 1e3:
        return f"{t_ms:.3f}ms"
    return f"{t_ms / 1e3:.3f}s"
