"""Versioned, deterministic checkpoint files for resumable replays.

A checkpoint captures a paused device replay completely: pickling the
replay driver (:class:`repro.sim.simulator.OpenLoopReplay`) drags the
FTL — and through it the :class:`~repro.nand.state.RegionState` arrays,
mapping/allocator/GC state, any attached fault plan with its RNG stream
positions — plus the chip/channel resource clocks and the explicit
loop-carry accumulators.  ``Block``'s pickle protocol rebuilds its
numpy views into the region arrays on load, so the restored object
graph has the same shared-memory shape as the original (not silent
copies), and a resumed replay is bit-identical to an uninterrupted one
(``tests/test_checkpoint.py`` proves it property-style).

File format (everything before the payload is plain bytes + JSON, so a
mismatched file fails loudly *before* any unpickling)::

    magic   b"repro-ckpt\\n"
    u32 BE  header length
    header  canonical JSON: format version, cache schema version, kind,
            key, epoch, payload SHA-256
    payload pickle (protocol 5)

The cache schema version rides in the header because a checkpoint is
exactly as invalidation-sensitive as a cache entry: any behaviour
change that would orphan cached results must orphan snapshots too.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any

from ..errors import ReproError

__all__ = ["CHECKPOINT_VERSION", "CheckpointError", "CheckpointStore",
           "load_checkpoint", "save_checkpoint"]

#: Leading bytes of every checkpoint file.
MAGIC = b"repro-ckpt\n"
#: Bump on any incompatible change to the file layout or payload shape.
CHECKPOINT_VERSION = 1
#: Kind tag of fleet device snapshots (the only kind today).
DEVICE_KIND = "fleet-device"
_LEN = struct.Struct(">I")


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from another world."""


def _schema_version() -> int:
    from ..experiments.cache import CACHE_SCHEMA_VERSION
    return CACHE_SCHEMA_VERSION


def save_checkpoint(path: "str | Path", payload: Any, *, key: str,
                    epoch: int, kind: str = DEVICE_KIND) -> None:
    """Atomically write ``payload`` as a checkpoint file.

    ``key`` is the identity of the run being snapshotted (the fleet
    device cache key); ``epoch`` is the number of completed epochs the
    payload represents.
    """
    blob = pickle.dumps(payload, protocol=5)
    header = {
        "version": CHECKPOINT_VERSION,
        "schema": _schema_version(),
        "kind": kind,
        "key": key,
        "epoch": int(epoch),
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            handle.write(_LEN.pack(len(header_bytes)))
            handle.write(header_bytes)
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: "str | Path", *, key: "str | None" = None,
                    kind: str = DEVICE_KIND) -> tuple[dict, Any]:
    """Validate and load one checkpoint; returns ``(header, payload)``.

    Every mismatch — magic, format version, cache schema version, kind,
    expected key, payload digest — raises :class:`CheckpointError`
    before the payload is unpickled (digest aside, which requires
    reading it, but still precedes unpickling).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
    body = raw[len(MAGIC):]
    if len(body) < _LEN.size:
        raise CheckpointError(f"{path}: truncated header")
    (header_len,) = _LEN.unpack_from(body)
    header_bytes = body[_LEN.size:_LEN.size + header_len]
    if len(header_bytes) != header_len:
        raise CheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as exc:
        raise CheckpointError(f"{path}: corrupt header ({exc})") from None
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format v{header.get('version')}, "
            f"this build reads v{CHECKPOINT_VERSION}")
    if header.get("schema") != _schema_version():
        raise CheckpointError(
            f"{path}: written under cache schema {header.get('schema')}, "
            f"current is {_schema_version()} — stale snapshot, rerun")
    if header.get("kind") != kind:
        raise CheckpointError(
            f"{path}: kind {header.get('kind')!r}, expected {kind!r}")
    if key is not None and header.get("key") != key:
        raise CheckpointError(
            f"{path}: snapshot of another run (key mismatch)")
    blob = body[_LEN.size + header_len:]
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: payload digest mismatch (corrupt)")
    return header, pickle.loads(blob)


class CheckpointStore:
    """Directory of checkpoints for one fleet campaign.

    File names carry the device and epoch (``d<device>_e<epoch>.ckpt``
    under a per-key subdirectory), so :meth:`latest_epoch` needs no
    index file and concurrent devices never collide.
    """

    def __init__(self, root: "str | Path", key: str):
        self.root = Path(root)
        self.key = key
        self._dir = self.root / key[:24]

    def path(self, device: int, epoch: int) -> Path:
        """Path of the snapshot of ``device`` after ``epoch`` epochs."""
        return self._dir / f"d{device}_e{epoch}.ckpt"

    def save(self, device: int, epoch: int, payload: Any) -> Path:
        """Snapshot ``device`` after ``epoch`` completed epochs."""
        path = self.path(device, epoch)
        save_checkpoint(path, payload, key=self.key, epoch=epoch)
        return path

    def latest_epoch(self, device: int) -> "int | None":
        """Highest epoch with a snapshot for ``device``, or ``None``."""
        prefix = f"d{device}_e"
        best: "int | None" = None
        if not self._dir.is_dir():
            return None
        for entry in self._dir.iterdir():
            name = entry.name
            if not (name.startswith(prefix) and name.endswith(".ckpt")):
                continue
            try:
                epoch = int(name[len(prefix):-len(".ckpt")])
            except ValueError:
                continue
            if best is None or epoch > best:
                best = epoch
        return best

    def load(self, device: int, epoch: int) -> Any:
        """Load and validate one snapshot's payload."""
        _, payload = load_checkpoint(self.path(device, epoch), key=self.key)
        return payload
