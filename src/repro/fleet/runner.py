"""One fleet device: build, stream, epoch loop, checkpoint, summarise.

A *device cell* is the fleet counterpart of an experiment cell: fully
determined by ``(FleetConfig, device index)``, replayed through the
standard :class:`~repro.sim.simulator.OpenLoopReplay`, and serialised
to a JSON-ready payload the result cache can hold.  The replay is
chunked on the epoch grid — each fleet-wide epoch chunk shards to one
(possibly empty) device chunk — and after every epoch the driver drains
its latency window into an epoch record: exact percentiles for the
device's own tail curve plus a fixed log-spaced histogram the campaign
layer merges for *fleet-level* percentiles (integer bin counts merge
exactly; percentile-of-concatenated-arrays would need every latency).

Checkpoints snapshot the replay driver after every ``checkpoint_every``
epochs; a resume loads the newest snapshot, fast-forwards the
deterministic stream past the consumed epochs, and continues
bit-identically.  Everything here is wall-clock-free: a device payload
is a pure function of its config, which is what makes it cacheable and
the resume-equality check (`tests/test_fleet.py`, the CI fleet smoke
job) meaningful at byte granularity.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import SSDConfig
from ..errors import ExperimentError
from ..sim.simulator import OpenLoopReplay
from ..traces.profiles import TraceProfile, profile
from ..traces.stream import MergedStream, TraceStream
from ..traces.synth import SyntheticStream, SyntheticTraceGenerator
from ..units import Ms
from .checkpoint import CheckpointStore
from .config import FleetConfig
from .shard import OffsetStream, ShardedStream

__all__ = [
    "LAT_HIST_EDGES_MS", "device_config", "device_stream", "fleet_stream",
    "histogram_latencies", "run_device",
]

#: Log-spaced latency histogram edges (ms): 96 bins over 1 µs..10 s plus
#: an underflow and an overflow bucket.  Integer counts over fixed edges
#: merge exactly across devices, which is what makes fleet-level tail
#: percentiles deterministic without shipping raw latency arrays.
_HIST_BINS = 96
_HIST_LO_EXP = -3.0
_HIST_HI_EXP = 4.0
LAT_HIST_EDGES_MS: np.ndarray = np.logspace(
    _HIST_LO_EXP, _HIST_HI_EXP, _HIST_BINS + 1)

#: Tail quantiles of the fleet curves.
TAIL_QUANTILES: tuple[tuple[str, float], ...] = (
    ("lat_p50_ms", 50.0), ("lat_p99_ms", 99.0), ("lat_p999_ms", 99.9))


def histogram_latencies(latencies: np.ndarray) -> list[int]:
    """Counts of ``latencies`` in the fixed fleet bins.

    Layout: ``[underflow, *bins, overflow]`` — length ``_HIST_BINS + 2``.
    """
    if not len(latencies):
        return [0] * (_HIST_BINS + 2)
    counts, _ = np.histogram(latencies, bins=LAT_HIST_EDGES_MS)
    under = int((latencies < LAT_HIST_EDGES_MS[0]).sum())
    over = int((latencies >= LAT_HIST_EDGES_MS[-1]).sum())
    return [under] + [int(c) for c in counts] + [over]


def quantile_from_histogram(hist: "list[int]", q: float) -> float:
    """Upper bin edge at cumulative quantile ``q`` (percent).

    Deterministic by construction (integer counts, fixed edges): the
    reported value is the upper edge of the first bin whose cumulative
    count reaches ``ceil(q/100 * total)``.  Underflow reports the lowest
    edge; overflow the highest.
    """
    total = sum(hist)
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * total))
    running = 0
    for i, count in enumerate(hist):
        running += count
        if running >= rank:
            if i == 0:
                return float(LAT_HIST_EDGES_MS[0])
            if i >= len(hist) - 1:
                return float(LAT_HIST_EDGES_MS[-1])
            return float(LAT_HIST_EDGES_MS[i])
    return float(LAT_HIST_EDGES_MS[-1])  # pragma: no cover - unreachable


# -- device sizing ----------------------------------------------------------


def _tenant_footprints(cfg: FleetConfig) -> tuple[float, float]:
    """Fleet-wide ``(hot-set bytes, page-footprint bytes)`` estimates.

    Each tenant runs the standard sizing pilot (a short generation whose
    :class:`~repro.traces.synth.ExtentTable` measures per-request hot and
    page footprints), scaled to the tenant's full request count and
    summed over the mix.
    """
    from ..experiments.runner import PILOT_REQUESTS
    hotset = 0.0
    page_fp = 0.0
    page_size = SSDConfig().geometry.page_size
    for index, (tenant, n_requests) in enumerate(
            zip(cfg.tenants, cfg.tenant_requests())):
        prof = profile(tenant.profile)
        pilot_n = max(1, min(PILOT_REQUESTS, n_requests))
        gen = SyntheticTraceGenerator(
            prof, n_requests=pilot_n, seed=cfg.tenant_seed(index))
        gen.generate()
        ext = gen.extents
        assert ext is not None
        scale_factor = n_requests / pilot_n
        hotset += float(ext.sizes[ext.is_hot].sum()) * scale_factor
        page_fp += float(ext.page_footprint_bytes(page_size)) * scale_factor
    return hotset, page_fp


def device_config(cfg: FleetConfig) -> SSDConfig:
    """Per-device configuration sized for this fleet's workload share.

    The fleet-wide footprints divide evenly across the array (striping
    spreads every tenant over every device), then flow through the same
    cache/over-provisioning formulas the single-device experiment
    runner uses, so a one-device fleet sizes like an ordinary cell.
    """
    from dataclasses import replace as _replace

    from ..config import CacheConfig, GeometryConfig, SCALES
    from ..experiments.runner import (
        CACHE_OVER_HOTSET, MIN_MLC_PER_PLANE, MIN_SLC_BLOCKS,
        MIN_SLC_PER_PLANE, MLC_OVER_FOOTPRINT)

    if cfg.scale not in SCALES:
        raise ExperimentError(
            f"unknown scale {cfg.scale!r}; available: {', '.join(SCALES)}")
    spec = SCALES[cfg.scale]
    hotset_bytes, page_fp = _tenant_footprints(cfg)
    hotset_bytes /= cfg.n_devices
    page_fp /= cfg.n_devices

    base = SSDConfig()
    page_size = base.geometry.page_size
    slc_block_bytes = base.geometry.slc_pages_per_block * page_size
    mlc_block_bytes = base.geometry.mlc_pages_per_block * page_size
    planes = spec.channels * spec.chips_per_channel * spec.planes_per_chip
    slc_per_plane = max(
        MIN_SLC_PER_PLANE,
        math.ceil(max(MIN_SLC_BLOCKS, CACHE_OVER_HOTSET * hotset_bytes
                      / slc_block_bytes) / planes),
    )
    mlc_per_plane = max(
        MIN_MLC_PER_PLANE,
        math.ceil(MLC_OVER_FOOTPRINT * page_fp / mlc_block_bytes / planes),
    )
    blocks_per_plane = slc_per_plane + mlc_per_plane
    geometry = GeometryConfig(
        channels=spec.channels,
        chips_per_channel=spec.chips_per_channel,
        planes_per_chip=spec.planes_per_chip,
        total_blocks=blocks_per_plane * planes,
    )
    cache = _replace(CacheConfig(),
                     slc_ratio=slc_per_plane / blocks_per_plane)
    return SSDConfig(geometry=geometry, cache=cache,
                     seed=cfg.seed).validate()


def _tenant_interarrival_ms(cfg: FleetConfig, index: int,
                            prof: TraceProfile, dev_cfg: SSDConfig) -> Ms:
    """Mean inter-arrival of tenant ``index``'s stream.

    :func:`~repro.experiments.runner.estimate_interarrival_ms` gives the
    arrival period that loads one device to target utilisation with this
    profile alone; tenant ``index`` supplies a ``weight/total`` share of
    the fleet-wide traffic feeding ``n_devices`` devices, so its period
    stretches by ``total_weight / (weight * n_devices)``.
    """
    from ..experiments.runner import estimate_interarrival_ms
    total_weight = sum(t.weight for t in cfg.tenants)
    base = estimate_interarrival_ms(prof, dev_cfg)
    return base * total_weight / (cfg.tenants[index].weight * cfg.n_devices)


# -- streams ----------------------------------------------------------------


def fleet_stream(cfg: FleetConfig, dev_cfg: "SSDConfig | None" = None,
                 ) -> TraceStream:
    """The merged multi-tenant fleet arrival stream (pre-sharding).

    Chunked on the epoch grid: chunk ``k`` holds fleet epoch ``k``'s
    requests.  Pure function of the config — re-iterable, so checkpoint
    fast-forward can regenerate it.
    """
    if dev_cfg is None:
        dev_cfg = device_config(cfg)
    streams: list[TraceStream] = []
    for index, (tenant, n_requests) in enumerate(
            zip(cfg.tenants, cfg.tenant_requests())):
        if n_requests < 1:
            continue
        prof = profile(tenant.profile)
        synth = SyntheticStream(
            prof, n_requests=n_requests,
            mean_interarrival_ms=_tenant_interarrival_ms(
                cfg, index, prof, dev_cfg),
            seed=cfg.tenant_seed(index),
            chunk_requests=cfg.epoch_requests)
        streams.append(OffsetStream(
            synth, cfg.tenant_base_offset(index),
            name=f"tenant{index}:{tenant.profile}"))
    return MergedStream(streams, chunk_requests=cfg.epoch_requests,
                        name=f"fleet:{cfg.scheme}")


def device_stream(cfg: FleetConfig, device: int,
                  dev_cfg: "SSDConfig | None" = None) -> ShardedStream:
    """Device ``device``'s shard of the fleet stream (epoch-aligned)."""
    return ShardedStream(fleet_stream(cfg, dev_cfg), device,
                         cfg.n_devices, cfg.stripe_bytes)


# -- the epoch loop ---------------------------------------------------------


def _epoch_record(cfg: FleetConfig, device: int, epoch: int,
                  replay: OpenLoopReplay, latencies: np.ndarray,
                  is_write: np.ndarray, dev_cfg: SSDConfig) -> dict:
    """One epoch's JSON-ready record: window tail stats + cumulative
    device counters (an aging snapshot, not a delta — cumulative integer
    counters are exact; windowed float deltas would not be)."""
    result = replay.result(f"fleet:d{device}")
    result.fleet_device = device
    result.fleet_epoch = epoch
    cum = result.deterministic_dict()
    # The latency arrays cover the run so far and grow per epoch; the
    # window percentiles below carry the distribution instead.
    cum.pop("read_latencies", None)
    cum.pop("write_latencies", None)
    record: dict = {
        "epoch": epoch,
        "device": device,
        "n_requests": int(len(latencies)),
        "reads": int((~is_write).sum()),
        "writes": int(is_write.sum()),
        "lat_hist": histogram_latencies(latencies),
        "cum": cum,
    }
    for field, q in TAIL_QUANTILES:
        record[field] = (float(np.percentile(latencies, q))
                         if len(latencies) else 0.0)
    total_blocks = dev_cfg.geometry.total_blocks
    record["capacity_loss"] = (
        cum["retired_blocks"] / total_blocks if total_blocks else 0.0)
    return record


def _build_replay(cfg: FleetConfig, device: int,
                  dev_cfg: SSDConfig) -> OpenLoopReplay:
    from .. import SCHEMES
    from ..faults import FaultConfig, attach_faults

    if cfg.scheme not in SCHEMES:
        raise ExperimentError(
            f"unknown scheme {cfg.scheme!r}; available: {', '.join(SCHEMES)}")
    ftl = SCHEMES[cfg.scheme](dev_cfg)
    faults = (FaultConfig.from_rate(cfg.fault_rate)
              if cfg.fault_rate > 0 else None)
    attach_faults(ftl, faults, seed=cfg.device_seed(device))
    return OpenLoopReplay(ftl, dev_cfg)


def run_device(cfg: FleetConfig, device: int, *,
               checkpoint_dir: "str | None" = None,
               checkpoint_every: int = 0,
               stop_after_epoch: "int | None" = None) -> "dict | None":
    """Replay one device cell; returns its JSON-ready payload.

    With ``checkpoint_dir`` set the replay snapshots after every
    ``checkpoint_every`` completed epochs (0 = only when stopping), and
    a rerun resumes from the newest snapshot instead of starting over.
    ``stop_after_epoch`` ends the run early *after* saving a snapshot
    and returns ``None`` — the resumable-campaign hook the CI smoke job
    drives.  Resumed and uninterrupted runs are byte-identical.
    """
    cfg.validate()
    if stop_after_epoch is not None and checkpoint_dir is None:
        raise ExperimentError(
            "stop_after_epoch without checkpoint_dir would discard the run")
    dev_cfg = device_config(cfg)
    store = (CheckpointStore(checkpoint_dir, cfg.device_key(device))
             if checkpoint_dir is not None else None)

    replay: "OpenLoopReplay | None" = None
    epochs: list[dict] = []
    start_epoch = 0
    if store is not None:
        latest = store.latest_epoch(device)
        if latest is not None:
            payload = store.load(device, latest)
            replay = payload["replay"]
            epochs = list(payload["epochs"])
            start_epoch = int(payload["next_epoch"])
    if replay is None:
        replay = _build_replay(cfg, device, dev_cfg)

    stream = device_stream(cfg, device, dev_cfg)
    for epoch, chunk in enumerate(stream.chunks()):
        if epoch < start_epoch:
            # Fast-forward: the stream is deterministic, so skipping the
            # chunks a snapshot already consumed re-aligns it exactly.
            continue
        if stop_after_epoch is not None and epoch >= stop_after_epoch:
            assert store is not None
            store.save(device, epoch, {
                "replay": replay, "epochs": epochs, "next_epoch": epoch})
            return None
        replay.feed(chunk)
        latencies, is_write = replay.drain_window()
        epochs.append(_epoch_record(
            cfg, device, epoch, replay, latencies, is_write, dev_cfg))
        done = epoch + 1
        if (store is not None and checkpoint_every > 0
                and done % checkpoint_every == 0 and done < cfg.n_epochs):
            store.save(device, done, {
                "replay": replay, "epochs": epochs, "next_epoch": done})

    final = replay.result(f"fleet:d{device}")
    final.fleet_device = device
    final.fleet_epoch = cfg.n_epochs - 1
    final_dict = final.deterministic_dict()
    final_dict.pop("read_latencies", None)
    final_dict.pop("write_latencies", None)
    return {
        "device": device,
        "key": cfg.device_key(device),
        "total_blocks": dev_cfg.geometry.total_blocks,
        "epochs": epochs,
        "final": final_dict,
    }
