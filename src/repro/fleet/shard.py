"""Static LSN-to-device sharding of a fleet trace stream.

The fleet address space is striped round-robin across the array:
stripe ``g = offset // stripe_bytes`` lands on device ``g % n_devices``
at device-local stripe ``g // n_devices`` — the classic RAID-0 layout.
A request crossing stripe boundaries splits into one sub-request per
stripe (each on its own device, same timestamp, order preserved), so
every requested byte is served by exactly one device and the per-device
address spaces stay dense.

:class:`ShardedStream` is one device's view of a fleet stream.  It
yields exactly one (possibly empty) chunk per base-stream chunk, so a
chunk boundary of the fleet stream — which :mod:`repro.fleet.runner`
equates with an epoch boundary — falls at the same point on every
device.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigError
from ..traces.model import Trace
from ..traces.stream import TraceStream

__all__ = ["OffsetStream", "ShardedStream", "shard_of", "split_extent"]


def shard_of(offset: int, stripe_bytes: int, n_devices: int,
             ) -> tuple[int, int]:
    """``(device, device-local byte offset)`` of one fleet byte offset."""
    stripe = offset // stripe_bytes
    local = (stripe // n_devices) * stripe_bytes + offset % stripe_bytes
    return stripe % n_devices, local


def split_extent(offset: int, size: int, stripe_bytes: int, n_devices: int,
                 ) -> "Iterator[tuple[int, int, int]]":
    """Split a byte extent at stripe boundaries.

    Yields ``(device, local_offset, length)`` pieces in ascending fleet
    offset order; the lengths sum to ``size`` and every piece lies
    inside one stripe.
    """
    end = offset + size
    while offset < end:
        device, local = shard_of(offset, stripe_bytes, n_devices)
        stripe_end = (offset // stripe_bytes + 1) * stripe_bytes
        length = min(end, stripe_end) - offset
        yield device, local, length
        offset += length


class OffsetStream:
    """Shift a stream's byte offsets by a constant (tenant windowing)."""

    def __init__(self, base: TraceStream, byte_offset: int,
                 name: "str | None" = None):
        if byte_offset < 0:
            raise ConfigError(
                f"byte_offset must be >= 0, got {byte_offset}")
        self.base = base
        self.byte_offset = byte_offset
        self.name = name if name is not None else base.name

    def chunks(self) -> "Iterator[Trace]":
        shift = self.byte_offset
        for chunk in self.base.chunks():
            yield Trace(chunk.times_ms, chunk.is_write,
                        chunk.offsets + shift, chunk.sizes, name=self.name)


class ShardedStream:
    """One device's slice of a fleet stream (see module docstring)."""

    def __init__(self, base: TraceStream, device: int, n_devices: int,
                 stripe_bytes: int, name: "str | None" = None):
        if not 0 <= device < n_devices:
            raise ConfigError(
                f"device {device} outside fleet of {n_devices}")
        if stripe_bytes < 1:
            raise ConfigError(
                f"stripe_bytes must be >= 1, got {stripe_bytes}")
        self.base = base
        self.device = device
        self.n_devices = n_devices
        self.stripe_bytes = stripe_bytes
        self.name = (name if name is not None
                     else f"{base.name}:d{device}")

    def chunks(self) -> "Iterator[Trace]":
        device = self.device
        n_devices = self.n_devices
        stripe_bytes = self.stripe_bytes
        name = self.name
        for chunk in self.base.chunks():
            times: list[float] = []
            writes: list[bool] = []
            offsets: list[int] = []
            sizes: list[int] = []
            c_times = chunk.times_ms.tolist()
            c_writes = chunk.is_write.tolist()
            c_offsets = chunk.offsets.tolist()
            c_sizes = chunk.sizes.tolist()
            for i in range(len(c_times)):
                for dev, local, length in split_extent(
                        c_offsets[i], c_sizes[i], stripe_bytes, n_devices):
                    if dev != device:
                        continue
                    times.append(c_times[i])
                    writes.append(c_writes[i])
                    offsets.append(local)
                    sizes.append(length)
            # One (possibly empty) chunk per base chunk: epoch boundaries
            # stay aligned across the whole array.
            yield Trace(times, writes, offsets, sizes, name=name)
