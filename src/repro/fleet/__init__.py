"""Sharded multi-device fleet simulation (streaming + checkpoint/restore).

The fleet layer sits above the single-device simulator and answers the
questions one cell cannot: tail latency across an *array* of devices
serving a multi-tenant workload, and capacity loss as the array ages
through long fault-injected campaigns.  Three pieces make it work:

* **streaming trace replay** (:mod:`repro.traces.stream`) keeps memory
  constant over arbitrarily long traces,
* **checkpoint/restore** (:mod:`repro.fleet.checkpoint`) snapshots a
  device replay every N epochs and resumes it byte-identically,
* **static LSN sharding** (:mod:`repro.fleet.shard`) splits one merged
  tenant stream across the devices, which then fan out over the
  existing process pool and result cache.

See ``docs/FLEET.md`` for the model and the determinism contracts.
"""

from .config import FleetConfig, TenantSpec
from .campaign import run_campaign
from .checkpoint import CheckpointError, CheckpointStore
from .runner import run_device
from .shard import OffsetStream, ShardedStream, shard_of

__all__ = [
    "CheckpointError", "CheckpointStore", "FleetConfig", "OffsetStream",
    "ShardedStream", "TenantSpec", "run_campaign", "run_device", "shard_of",
]
