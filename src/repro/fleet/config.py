"""Fleet campaign configuration.

A :class:`FleetConfig` fixes everything that determines a fleet
campaign's outcome: the device count, the per-tenant trace mixes
(profiles + traffic weights layered on the calibrated
:mod:`repro.traces.profiles`), the scheme/scale/seed cell identity, the
epoch grid, the static sharding stripe and the fault-injection rate.
Like :class:`repro.frontend.FrontendConfig` it is deliberately
dependency-light and fully serialisable — the result cache keys on its
canonical JSON and the parallel fan-out ships it to workers as a
string — and every derived quantity (tenant request counts, tenant
seeds, device cache keys) is a pure function of it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

from ..errors import ConfigError
from ..rng import derive_seed
from ..units import KIB

__all__ = [
    "DEFAULT_EPOCH_REQUESTS", "DEFAULT_N_EPOCHS", "DEFAULT_STRIPE_BYTES",
    "FleetConfig", "TENANT_ADDRESS_STRIDE", "TenantSpec",
]

#: Bytes of one sharding stripe: consecutive stripes go to consecutive
#: devices round-robin.  256 KiB keeps most requests (<= 64 KiB) inside
#: one stripe while still spreading hot extents across the array.
DEFAULT_STRIPE_BYTES = 256 * KIB
#: Fleet-wide requests per epoch (the checkpoint/metrics granularity).
DEFAULT_EPOCH_REQUESTS = 4_096
#: Epochs per campaign.
DEFAULT_N_EPOCHS = 4
#: Byte distance between tenant address spaces.  Each tenant's logical
#: extents live in its own 1 TiB-aligned window, so tenants can never
#: alias each other's data no matter how their traces grow.
TENANT_ADDRESS_STRIDE = 2 ** 40


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet workload: a trace profile plus a traffic
    weight (its share of the fleet-wide request budget)."""

    #: Name of a calibrated profile in :data:`repro.traces.profiles.PROFILES`.
    profile: str
    #: Relative share of the fleet request budget (normalised over tenants).
    weight: float = 1.0

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on invalid values."""
        from ..traces.profiles import PROFILES
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown tenant profile {self.profile!r}; "
                f"available: {', '.join(PROFILES)}")
        if not self.weight > 0:
            raise ConfigError(
                f"tenant weight must be positive, got {self.weight}")

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`."""
        return {"profile": self.profile, "weight": self.weight}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown TenantSpec fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet campaign's outcome."""

    #: Devices in the array.
    n_devices: int = 2
    #: Tenant workload mix (at least one).
    tenants: tuple[TenantSpec, ...] = field(
        default_factory=lambda: (TenantSpec("ts0"),))
    #: FTL scheme every device runs.
    scheme: str = "ipu"
    #: Device sizing scale preset (see :data:`repro.config.SCALES`).
    scale: str = "smoke"
    #: Root seed; tenant and device child seeds derive from it.
    seed: int = 1
    #: Epochs per campaign (the aging axis of the fleet curves).
    n_epochs: int = DEFAULT_N_EPOCHS
    #: Fleet-wide requests per epoch.  Also the stream chunk size, so an
    #: epoch boundary is a chunk boundary on every device.
    epoch_requests: int = DEFAULT_EPOCH_REQUESTS
    #: Sharding stripe in bytes (4 KiB-aligned).
    stripe_bytes: int = DEFAULT_STRIPE_BYTES
    #: Fault-injection rate multiplier (0 = fault-free), applied per
    #: device via :meth:`repro.faults.FaultConfig.from_rate`.
    fault_rate: float = 0.0

    def validate(self) -> "FleetConfig":
        """Raise :class:`~repro.errors.ConfigError` on invalid values."""
        if self.n_devices < 1:
            raise ConfigError(f"n_devices must be >= 1, got {self.n_devices}")
        if not self.tenants:
            raise ConfigError("fleet needs at least one tenant")
        for tenant in self.tenants:
            tenant.validate()
        if self.n_epochs < 1:
            raise ConfigError(f"n_epochs must be >= 1, got {self.n_epochs}")
        if self.epoch_requests < 1:
            raise ConfigError(
                f"epoch_requests must be >= 1, got {self.epoch_requests}")
        if self.stripe_bytes < 4 * KIB or self.stripe_bytes % (4 * KIB):
            raise ConfigError(
                f"stripe_bytes must be a positive multiple of 4 KiB, "
                f"got {self.stripe_bytes}")
        if self.fault_rate < 0:
            raise ConfigError(
                f"fault_rate must be >= 0, got {self.fault_rate}")
        return self

    # -- derived identities -------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Fleet-wide requests over the whole campaign."""
        return self.n_epochs * self.epoch_requests

    def tenant_requests(self) -> list[int]:
        """Per-tenant request counts, split from :attr:`total_requests`
        proportionally to the weights (largest-remainder rounding, so
        the counts always sum exactly and deterministically)."""
        weights = [t.weight for t in self.tenants]
        total_weight = sum(weights)
        total = self.total_requests
        raw = [total * w / total_weight for w in weights]
        counts = [int(r) for r in raw]
        shortfall = total - sum(counts)
        # Largest fractional remainders get the leftover requests; ties
        # break by tenant position, so the split is order-stable.
        remainders = sorted(range(len(raw)),
                            key=lambda i: (-(raw[i] - counts[i]), i))
        for i in remainders[:shortfall]:
            counts[i] += 1
        return counts

    def tenant_seed(self, index: int) -> int:
        """Root seed of tenant ``index``'s trace stream.

        Derived per *index*, not per profile, so two tenants running the
        same profile still generate independent traces.
        """
        return derive_seed(self.seed, f"fleet:tenant:{index}")

    def device_seed(self, device: int) -> int:
        """Root seed of ``device``'s fault-injection streams (devices
        must not fail in lockstep)."""
        return derive_seed(self.seed, f"fleet:device:{device}")

    def tenant_base_offset(self, index: int) -> int:
        """Byte offset of tenant ``index``'s private address window."""
        return index * TENANT_ADDRESS_STRIDE

    def device_key(self, device: int) -> str:
        """Content hash identifying one device-cell of this campaign for
        the on-disk result cache (schema-versioned like every key)."""
        from ..experiments.cache import CACHE_SCHEMA_VERSION
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "fleet-device",
            "fleet": self.to_dict(),
            "device": int(device),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- serialisation (cache keys, worker specs) ---------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "tenants":
                value = [t.to_dict() for t in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown FleetConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(
                TenantSpec.from_dict(t) for t in kwargs["tenants"])
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — stable across processes, so it
        is safe inside cache keys and worker specs."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
