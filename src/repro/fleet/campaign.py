"""Fleet campaign orchestration and aggregation.

:func:`run_campaign` fans the fleet's device cells over the experiment
layer's process pool (:mod:`repro.experiments.parallel`), consulting the
shared on-disk result cache per device, then folds the per-device
payloads into the fleet artifacts: per-epoch tail-latency curves
(p50/p99/p999 over the *merged* device histograms — integer bin counts
merge exactly, so the fleet percentiles are deterministic regardless of
worker count or cache state) and the capacity-loss-vs-age curve
(retired blocks over fleet blocks, per epoch).

The aggregate serialises through :func:`campaign_json` — canonical JSON,
sorted keys, no whitespace variance — which is the byte-identity surface
the checkpoint/resume contract is checked against: a campaign stopped
mid-flight with ``stop_after_epoch`` and rerun to completion must
produce the same bytes as one that never stopped (CI's fleet smoke job
runs exactly that comparison).
"""

from __future__ import annotations

import json

from ..errors import ExperimentError
from .config import FleetConfig
from .runner import TAIL_QUANTILES, quantile_from_histogram

__all__ = ["aggregate_fleet", "campaign_json", "run_campaign"]

#: Cumulative device counters summed into the campaign totals.  Integers
#: only (exact under any summation order); float accumulators such as
#: ``read_raw_errors`` stay per-device in the payloads.
TOTAL_FIELDS = (
    "n_requests", "erases_slc", "erases_mlc", "programs_slc",
    "programs_mlc", "partial_programs", "intra_page_updates",
    "read_faults", "read_retries", "uncorrectable_reads",
    "fault_relocations", "program_failures", "erase_failures",
    "retired_blocks", "power_loss_events", "torn_subpages",
    "recovered_subpages",
)


def aggregate_fleet(cfg: FleetConfig, devices: "list[dict]") -> dict:
    """Fold per-device payloads into the fleet-level campaign record."""
    devices = sorted(devices, key=lambda d: d["device"])
    fleet_blocks = sum(d["total_blocks"] for d in devices)

    epochs: list[dict] = []
    for epoch in range(cfg.n_epochs):
        per_dev = [d["epochs"][epoch] for d in devices]
        merged_hist = [0] * len(per_dev[0]["lat_hist"])
        for rec in per_dev:
            for i, count in enumerate(rec["lat_hist"]):
                merged_hist[i] += count
        record: dict = {
            "epoch": epoch,
            "n_requests": sum(r["n_requests"] for r in per_dev),
            "reads": sum(r["reads"] for r in per_dev),
            "writes": sum(r["writes"] for r in per_dev),
            "lat_hist": merged_hist,
            "retired_blocks": sum(r["cum"]["retired_blocks"]
                                  for r in per_dev),
        }
        for field, q in TAIL_QUANTILES:
            record[field] = quantile_from_histogram(merged_hist, q)
        record["capacity_loss"] = (
            record["retired_blocks"] / fleet_blocks if fleet_blocks else 0.0)
        epochs.append(record)

    totals = {name: sum(d["final"][name] for d in devices)
              for name in TOTAL_FIELDS}
    return {
        "fleet": cfg.to_dict(),
        "n_devices": cfg.n_devices,
        "fleet_blocks": fleet_blocks,
        "devices": devices,
        "epochs": epochs,
        "totals": totals,
    }


def campaign_json(campaign: dict) -> str:
    """Canonical JSON of a campaign record (the byte-identity surface)."""
    return json.dumps(campaign, sort_keys=True, separators=(",", ":"))


def run_campaign(cfg: FleetConfig, *, jobs: "int | None" = None,
                 cache_dir: "str | None" = None,
                 checkpoint_dir: "str | None" = None,
                 checkpoint_every: int = 0,
                 stop_after_epoch: "int | None" = None) -> "dict | None":
    """Run every device cell of ``cfg`` and aggregate the fleet record.

    Device cells fan out over ``jobs`` worker processes (1 = inline) and
    short-circuit on the result cache under ``cache_dir``.  With
    ``checkpoint_dir`` set, each device snapshots every
    ``checkpoint_every`` epochs and a rerun resumes from the newest
    snapshots.  ``stop_after_epoch`` pauses the whole campaign there —
    snapshots are saved and ``None`` is returned; rerunning without it
    finishes the campaign byte-identically to an uninterrupted run.
    """
    cfg.validate()
    from ..experiments.parallel import FleetDeviceSpec, run_fleet_devices

    fleet_json = cfg.to_json()
    specs = [FleetDeviceSpec(fleet_json=fleet_json, device=device,
                             cache_dir=cache_dir,
                             checkpoint_dir=checkpoint_dir,
                             checkpoint_every=checkpoint_every,
                             stop_after_epoch=stop_after_epoch)
             for device in range(cfg.n_devices)]
    payloads = run_fleet_devices(specs, jobs)
    if stop_after_epoch is not None:
        return None
    missing = [spec.device for spec, payload in zip(specs, payloads)
               if payload is None]
    if missing:
        raise ExperimentError(
            f"fleet devices returned no payload: {missing}")
    return aggregate_fleet(cfg, [p for p in payloads if p is not None])
