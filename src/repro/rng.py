"""Deterministic random-number utilities.

Every stochastic component of the library (trace generation, sampling error
injection, tie-breaking) draws from a :class:`numpy.random.Generator` seeded
through :func:`make_rng`, so a given configuration always reproduces the
same simulation.  Independent streams are derived from a root seed plus a
string *key* so that adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used when the caller does not supply one.
DEFAULT_SEED: int = 0x5EED_CACE

#: Stream-key prefix reserved for the fault-injection subsystem
#: (:mod:`repro.faults`).  Every stochastic fault mechanism draws from
#: ``faults:<mechanism>`` so fault sampling never perturbs the trace or
#: error-model streams derived from the same root seed.
FAULTS_STREAM: str = "faults"


def derive_seed(root: int, key: str) -> int:
    """Derive a stable 64-bit child seed from ``root`` and a stream ``key``.

    Uses BLAKE2 over the root seed and the key so that distinct keys give
    statistically independent streams and the mapping is stable across
    Python processes (unlike :func:`hash`).
    """
    digest = hashlib.blake2b(
        key.encode("utf-8"),
        key=int(root).to_bytes(8, "little", signed=False),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


def make_rng(seed: int | None = None, key: str = "") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for stream ``key``.

    Parameters
    ----------
    seed:
        Root seed; ``None`` selects :data:`DEFAULT_SEED`.
    key:
        Optional stream name, e.g. ``"trace:ts0"``.  Different keys under
        the same root seed yield independent generators.
    """
    root = DEFAULT_SEED if seed is None else int(seed) & 0xFFFF_FFFF_FFFF_FFFF
    if key:
        root = derive_seed(root, key)
    return np.random.default_rng(root)


def faults_rng(seed: int | None, mechanism: str) -> np.random.Generator:
    """Generator for one fault-injection mechanism (e.g. ``"read"``).

    A thin wrapper over :func:`make_rng` with the :data:`FAULTS_STREAM`
    key prefix: mechanisms stay mutually independent, and a simulation
    with fault injection disabled consumes none of these streams, so its
    other randomness is bit-identical to a run without the subsystem.
    """
    if not mechanism:
        raise ValueError("fault mechanism name must be non-empty")
    return make_rng(seed, key=f"{FAULTS_STREAM}:{mechanism}")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = rng.bit_generator.seed_seq
    if not isinstance(seq, np.random.SeedSequence):
        # Exotic bit generators may carry a custom ISeedSequence without
        # spawn(); every generator repro creates is SeedSequence-backed.
        raise TypeError(f"cannot spawn from seed sequence of type "
                        f"{type(seq).__name__}")
    return [np.random.default_rng(s) for s in seq.spawn(n)]
