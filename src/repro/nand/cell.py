"""Flash cell operating modes.

A hybrid high-density SSD runs most blocks in their native multi-level mode
and a small region in SLC mode (one bit per cell).  SLC-mode blocks expose
half the pages of an MLC block built from the same word lines, but read,
program and endure erases much better (Section 1 of the paper).
"""

from __future__ import annotations

import enum


class CellMode(enum.Enum):
    """Operating mode of a block."""

    SLC = "slc"
    MLC = "mlc"

    @property
    def is_slc(self) -> bool:
        """True for the SLC-mode cache region."""
        return self is CellMode.SLC

    @property
    def bits_per_cell(self) -> int:
        """Bits stored per floating-gate cell."""
        return 1 if self is CellMode.SLC else 2

    def pages_per_block(self, slc_pages: int, mlc_pages: int) -> int:
        """Select the page count for this mode from geometry settings."""
        return slc_pages if self is CellMode.SLC else mlc_pages

    @property
    def endurance_factor(self) -> int:
        """Relative erase endurance versus the native high-density mode.

        The paper quotes an SLC:MLC endurance ratio of 10:1 (Section 4.3.2,
        citing Liu et al.).
        """
        return 10 if self is CellMode.SLC else 1
