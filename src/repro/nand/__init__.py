"""NAND flash array substrate.

Models the physical hierarchy (channel / chip / plane / block / page /
subpage), SLC-mode versus native MLC blocks, sequential page programming,
**partial programming** of SLC-mode pages (up to the manufacturer limit),
program-disturb bookkeeping (in-page and neighbouring-page), per-block P/E
wear, and erase.
"""

from .cell import CellMode
from .geometry import Geometry, PPA
from .block import Block, BlockState
from .flash import FlashArray, ProgramResult
from .wear import WearTracker

__all__ = [
    "CellMode",
    "Geometry",
    "PPA",
    "Block",
    "BlockState",
    "FlashArray",
    "ProgramResult",
    "WearTracker",
]
