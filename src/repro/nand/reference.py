"""Pure-python reference implementation of :class:`~repro.nand.block.Block`.

The array-backed block (:mod:`repro.nand.block` over
:class:`~repro.nand.state.RegionState`) is a performance kernel: flat
numpy stores, python-int bitmasks, inlined watcher updates.  This module
keeps the *specification* alive as executable code: one slot at a time,
nested python lists, no numpy, no derived mirrors — the simplest state
machine that satisfies the documented block semantics.

``tests/test_array_state.py`` drives randomized operation sequences
(hypothesis) through both implementations and asserts identical
observable state, return values and raised exception types after every
step.  The reference is deliberately *not* used anywhere in the
simulator; its only job is to make the kernel's optimisations falsifiable.

Method names, signatures and exception types match ``Block`` exactly, so
a single interpreter can drive either implementation.
"""

from __future__ import annotations

from ..errors import (
    EraseError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from .block import BlockState
from .cell import CellMode
from .state import NO_LSN
from ..units import Lsn, Ms, PeCycles, Ppn, SubpageCount

__all__ = ["ReferenceBlock"]


class ReferenceBlock:
    """One-slot-at-a-time model of a block's observable state.

    Everything is plain python: ``programmed``/``valid`` are nested bool
    lists, occupancy counters are recomputed-by-increment with no bitmask
    shortcuts, and the disturb pass walks slots with explicit loops.
    """

    # Unit vocabulary for the dimensioned state (``repro.units``): the
    # same facts the kernel's ``RegionState`` columns carry, in nested
    # per-page list form.
    erase_count: PeCycles
    next_page: Ppn
    alloc_time: Ms
    slot_lsn: "list[list[Lsn]]"
    slot_time: "list[list[Ms]] | None"
    slot_program_time: "list[list[Ms]] | None"

    def __init__(self, block_id: int, mode: CellMode, pages: int,
                 subpages_per_page: int):
        self.block_id = block_id
        self.mode = mode
        self.is_slc = mode.is_slc
        self.pages = pages
        self.spp = subpages_per_page
        self.erase_count = 0
        self.next_page = 0
        self.state = BlockState.FREE
        self.level: int | None = None
        self.alloc_time: Ms = 0.0
        self.content_epoch = 0
        self.read_count = 0
        self._reset_content()

    def _reset_content(self) -> None:
        pages, spp = self.pages, self.spp
        self.programmed = [[False] * spp for _ in range(pages)]
        self.valid = [[False] * spp for _ in range(pages)]
        self.slot_lsn = [[NO_LSN] * spp for _ in range(pages)]
        self._pass_counts = [0] * pages
        if self.is_slc:
            self.slot_time = [[0.0] * spp for _ in range(pages)]
            self.slot_program_time = [[0.0] * spp for _ in range(pages)]
            self.disturb_in = [[0] * spp for _ in range(pages)]
            self.disturb_nb = [[0] * spp for _ in range(pages)]
            self.page_updated = [False] * pages
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None

    # -- derived quantities (recomputed, never cached) -------------------

    @property
    def n_valid(self) -> SubpageCount:
        return sum(sum(row) for row in self.valid)

    @property
    def n_programmed(self) -> SubpageCount:
        return sum(sum(row) for row in self.programmed)

    @property
    def n_invalid(self) -> SubpageCount:
        return self.n_programmed - self.n_valid

    @property
    def page_valid(self) -> list[int]:
        return [sum(row) for row in self.valid]

    @property
    def page_programmed(self) -> list[int]:
        return [sum(row) for row in self.programmed]

    @property
    def pages_with_valid(self) -> int:
        return sum(1 for row in self.valid if any(row))

    @property
    def total_subpages(self) -> SubpageCount:
        return self.pages * self.spp

    @property
    def is_full(self) -> bool:
        return self.next_page >= self.pages

    @property
    def reclaimable_subpages(self) -> SubpageCount:
        return self.total_subpages - self.n_valid

    def free_slots_of_page(self, page: int) -> list[int]:
        return [s for s in range(self.spp) if not self.programmed[page][s]]

    def valid_slots_of_page(self, page: int) -> list[int]:
        return [s for s in range(self.spp) if self.valid[page][s]]

    def slot_lsns(self, page: int, slots: list[int]) -> "list[Lsn]":
        return [self.slot_lsn[page][s] for s in slots]

    def can_partial_program(self, page: int, nslots: int,
                            max_programs: int) -> bool:
        if not 0 <= page < self.next_page:
            return False
        if self.pass_counts[page] >= max_programs:
            return False
        return self.spp - self.page_programmed[page] >= nslots

    # ``pass_counts`` is authoritative here (the kernel mirrors it from
    # ``RegionState.program_count``).
    @property
    def pass_counts(self) -> list[int]:
        return self._pass_counts

    # -- mutation --------------------------------------------------------

    def program(self, page: int, slots: list[int], lsns: list[Lsn], now: Ms,
                max_programs: int) -> bool:
        partial, _ = self.program_disturb(
            page, slots, lsns, now, max_programs, apply_disturb=False)
        return partial

    def program_disturb(self, page: int, slots: list[int], lsns: list[Lsn],
                        now: Ms, max_programs: int,
                        apply_disturb: bool = True) -> "tuple[bool, int]":
        n = len(slots)
        if n != len(lsns) or not n:
            raise SubpageStateError(
                f"block {self.block_id}: slots/lsns mismatch ({slots} vs {lsns})")
        if self.state not in (BlockState.OPEN, BlockState.FULL):
            raise SubpageStateError(
                f"block {self.block_id}: program while {self.state.value}")
        if page == self.next_page:
            partial = False
        elif 0 <= page < self.next_page:
            partial = True
            if not self.is_slc:
                raise SubpageStateError(
                    f"block {self.block_id}: partial programming requires SLC mode")
            if self._pass_counts[page] >= max_programs:
                raise PartialProgramLimitError(
                    f"block {self.block_id} page {page}: "
                    f"{self._pass_counts[page]} passes >= limit {max_programs}")
        else:
            raise ProgramOrderError(
                f"block {self.block_id}: page {page} programmed out of order "
                f"(next free page is {self.next_page})")
        seen: set[int] = set()
        for slot in slots:
            if not 0 <= slot < self.spp:
                raise SubpageStateError(
                    f"slot {slot} out of range [0, {self.spp})")
            if self.programmed[page][slot]:
                raise SubpageStateError(
                    f"block {self.block_id} page {page} slot {slot}: "
                    f"already programmed")
            if slot in seen:
                raise SubpageStateError(
                    f"block {self.block_id}: duplicate slots {slots}")
            seen.add(slot)
        if not partial:
            self.next_page += 1
        for slot, lsn in zip(slots, lsns):
            self.programmed[page][slot] = True
            self.valid[page][slot] = True
            self.slot_lsn[page][slot] = lsn
            if self.is_slc:
                self.slot_time[page][slot] = now
                self.slot_program_time[page][slot] = now
        self._pass_counts[page] += 1
        if self.next_page >= self.pages and self.state is BlockState.OPEN:
            self.state = BlockState.FULL
        self.content_epoch += 1
        disturbed = 0
        if partial and apply_disturb:
            disturbed = self.add_disturb(page, slots)
        return partial, disturbed

    def reprogram_pass(self, page: int, max_programs: int) -> int:
        if not self.is_slc:
            raise SubpageStateError(
                f"block {self.block_id}: partial programming requires SLC mode")
        if not 0 <= page < self.next_page:
            raise ProgramOrderError(
                f"block {self.block_id}: reprogram of unwritten page {page}")
        if self._pass_counts[page] >= max_programs:
            raise PartialProgramLimitError(
                f"block {self.block_id} page {page}: "
                f"{self._pass_counts[page]} passes >= limit {max_programs}")
        self._pass_counts[page] += 1
        self.content_epoch += 1
        return self.add_disturb(page, [])

    def invalidate(self, page: int, slot: int) -> None:
        # An out-of-range (non-negative) slot is "not valid" like any
        # other unset bit — the kernel's bitmask check makes no
        # distinction, so neither does the specification.
        if not 0 <= slot < self.spp or not self.valid[page][slot]:
            raise SubpageStateError(
                f"block {self.block_id} page {page} slot {slot}: not valid")
        self.valid[page][slot] = False
        self.content_epoch += 1

    def invalidate_many(self, page: int, slots: list[int]) -> None:
        if not slots:
            return
        seen: set[int] = set()
        for slot in slots:
            if (not 0 <= slot < self.spp or not self.valid[page][slot]
                    or slot in seen):
                raise SubpageStateError(
                    f"block {self.block_id} page {page} slot {slot}: not valid")
            seen.add(slot)
        for slot in slots:
            self.valid[page][slot] = False
        self.content_epoch += len(slots)

    def mark_page_updated(self, page: int) -> None:
        if self.page_updated is not None:
            self.page_updated[page] = True
            self.content_epoch += 1

    def touch(self, page: int, slots: list[int], now: Ms) -> None:
        if self.slot_time is not None:
            for slot in slots:
                self.slot_time[page][slot] = now

    def add_disturb(self, page: int, written_slots: list[int]) -> int:
        if self.disturb_in is None:
            raise SubpageStateError(
                "disturb tracking only exists for SLC-mode blocks")
        written = set(written_slots)
        hit_valid = 0
        for slot in range(self.spp):
            if self.programmed[page][slot] and slot not in written:
                self.disturb_in[page][slot] += 1
                if self.valid[page][slot]:
                    hit_valid += 1
        for npage in (page - 1, page + 1):
            if 0 <= npage < self.next_page:
                for slot in range(self.spp):
                    if self.programmed[npage][slot]:
                        self.disturb_nb[npage][slot] += 1
        return hit_valid

    def erase(self) -> None:
        if self.n_valid != 0:
            raise EraseError(
                f"block {self.block_id}: erase with {self.n_valid} valid subpages")
        if self.state is BlockState.FREE:
            raise EraseError(f"block {self.block_id}: erase of a free block")
        self.erase_count += 1
        self.next_page = 0
        self.state = BlockState.FREE
        self.level = None
        self._reset_content()
        self.content_epoch += 1
        self.read_count = 0

    def retire(self) -> None:
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: retire while {self.state.value} "
                f"(blocks retire from the just-erased FREE state)")
        self.state = BlockState.RETIRED

    def open_as(self, level: int, now: Ms) -> None:
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: open while {self.state.value}")
        self.state = BlockState.OPEN
        self.level = level
        self.alloc_time = now

    def mark_victim(self) -> None:
        self.state = BlockState.VICTIM
