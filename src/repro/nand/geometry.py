"""Physical address arithmetic.

Blocks are identified by a flat global index.  The mapping to the
channel/chip/plane hierarchy is fixed: consecutive block indices fill one
plane before moving to the next, planes fill chips, chips fill channels::

    plane(b)   = b // blocks_per_plane
    chip(b)    = plane(b) // planes_per_chip
    channel(b) = chip(b) // chips_per_channel

A physical subpage address (:class:`PPA`) is ``(block, page, slot)`` where
``slot`` indexes the 4 KiB subpage inside the 16 KiB page.
"""

from __future__ import annotations

from typing import NamedTuple

from ..config import GeometryConfig
from ..errors import ConfigError
from ..units import Bytes, Lpn, Lsn


class PPA(NamedTuple):
    """Physical address of one subpage."""

    block: int
    page: int
    slot: int


class Geometry:
    """Address arithmetic over a validated :class:`GeometryConfig`."""

    def __init__(self, config: GeometryConfig):
        config.validate()
        self.config = config
        self.channels = config.channels
        self.chips = config.chips
        self.planes = config.planes
        self.total_blocks = config.total_blocks
        self.blocks_per_plane = config.blocks_per_plane
        self.subpages_per_page = config.subpages_per_page
        self.page_size = config.page_size
        self.subpage_size = config.subpage_size
        self.slc_pages_per_block = config.slc_pages_per_block
        self.mlc_pages_per_block = config.mlc_pages_per_block

    # -- hierarchy -----------------------------------------------------

    def plane_of(self, block: int) -> int:
        """Plane hosting ``block``."""
        self._check_block(block)
        return block // self.blocks_per_plane

    def chip_of(self, block: int) -> int:
        """Chip hosting ``block``."""
        return self.plane_of(block) // self.config.planes_per_chip

    def channel_of(self, block: int) -> int:
        """Channel hosting ``block``."""
        return self.chip_of(block) // self.config.chips_per_channel

    def blocks_of_plane(self, plane: int) -> range:
        """Global block indices belonging to ``plane``."""
        if not 0 <= plane < self.planes:
            raise ConfigError(f"plane {plane} out of range [0, {self.planes})")
        start = plane * self.blocks_per_plane
        return range(start, start + self.blocks_per_plane)

    # -- logical space -------------------------------------------------

    def lpn_of_lsn(self, lsn: Lsn) -> Lpn:
        """Logical page containing logical subpage ``lsn``."""
        if lsn < 0:
            raise ConfigError(f"negative LSN {lsn}")
        return lsn // self.subpages_per_page

    def lsn_range_of_lpn(self, lpn: Lpn) -> range:
        """Logical subpages forming logical page ``lpn``."""
        if lpn < 0:
            raise ConfigError(f"negative LPN {lpn}")
        start = lpn * self.subpages_per_page
        return range(start, start + self.subpages_per_page)

    def byte_range_to_lsns(self, offset: Bytes, length: Bytes) -> range:
        """Logical subpages overlapped by the byte extent ``[offset, offset+length)``."""
        if offset < 0 or length <= 0:
            raise ConfigError(f"invalid byte extent offset={offset} length={length}")
        first = offset // self.subpage_size
        last = (offset + length - 1) // self.subpage_size
        return range(first, last + 1)

    # -- capacity ------------------------------------------------------

    def pages_per_block(self, slc: bool) -> int:
        """Page count of a block in the given mode."""
        return self.slc_pages_per_block if slc else self.mlc_pages_per_block

    def subpages_per_block(self, slc: bool) -> int:
        """Subpage count of a block in the given mode."""
        return self.pages_per_block(slc) * self.subpages_per_page

    # -- internal ------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            raise ConfigError(f"block {block} out of range [0, {self.total_blocks})")
