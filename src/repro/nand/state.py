"""Structure-of-arrays backing store for flash block/subpage state.

One :class:`RegionState` owns every per-slot, per-page and per-block
array of a region (the SLC-mode cache or the high-density region) as
*flat* block-major numpy arrays; each
:class:`~repro.nand.block.Block` is a thin view over one block-sized
stripe of them.  Keeping the whole region contiguous is what makes
batched kernels possible — a GC drain or a flush span can price every
subpage it touches with one array expression instead of one python call
per slot — while the blocks keep mutating their own stripe through
scalar item stores, which profiling shows beat fancy indexing by a wide
margin at subpage (``spp`` = 4) granularity.

Layout, for a region of ``n_blocks`` blocks × ``pages`` pages × ``spp``
subpage slots (``block_stride = pages * spp``)::

    per-slot   (n_blocks * pages * spp,)   programmed  valid  slot_lsn
                                           slot_time   slot_program_time
                                           disturb_in  disturb_nb
    per-page   (n_blocks * pages,)         program_count  page_updated
    per-block  (n_blocks,)                 erase_count  state_code  level

    flat slot index  = block_slot * block_stride + page * spp + slot
    flat page index  = block_slot * pages + page

``block_slot`` is the block's position inside its region (block ids are
striped across planes, so they are not contiguous per region).

dtype choices and bit-identity: ``slot_time``/``slot_program_time`` are
``float64`` — the same IEEE doubles python floats are, so storing a
python ``now`` and reading it back round-trips exactly.  Disturb
counters are ``int64``: integer adds are exact, and the RBER kernel
converts them to ``float64`` precisely (they stay far below 2**53).
``slot_lsn`` is ``int64`` with :data:`NO_LSN` = -1 as the never-written
sentinel; ``program_count`` is ``uint8`` (the manufacturer pass limit is
single digits); ``state_code``/``level`` are small ints with -1 as the
"no level" sentinel.  The SLC-only arrays are ``None`` for the
high-density region — native MLC pages are programmed exactly once, so
their reliability is the base RBER curve alone.

The mask tables support the hot-path trick the blocks use: alongside the
authoritative bool arrays, each block keeps per-page *python int*
bitmasks of its programmed/valid slots, so membership tests, slot
enumeration and disturb targeting are plain integer ops.  The tables
convert a mask to its ascending slot tuple (or its popcount) in one
list index.  ``Block.verify_array_state`` cross-checks the masks against
the arrays so they can never drift silently.
"""

from __future__ import annotations

import numpy as np

from ..units import LsnArray, MsArray, PeCyclesArray

#: Sentinel stored in ``slot_lsn`` for a slot that never held data.
NO_LSN: int = -1


class SlotMaskTables:
    """Precomputed lookups from a subpage bitmask to slot tuples.

    Built once per distinct ``spp`` (tiny: ``2**spp`` entries) and shared
    by every region and block with that geometry.
    """

    __slots__ = ("spp", "full_mask", "set_slots", "popcount")

    def __init__(self, spp: int):
        self.spp = spp
        #: Mask with every slot bit set.
        self.full_mask = (1 << spp) - 1
        #: ``set_slots[m]`` — ascending tuple of the slots set in ``m``.
        self.set_slots = tuple(
            tuple(s for s in range(spp) if mask >> s & 1)
            for mask in range(1 << spp))
        #: ``popcount[m]`` — number of slots set in ``m``.
        self.popcount = tuple(len(t) for t in self.set_slots)


_TABLES: dict[int, SlotMaskTables] = {}


def mask_tables(spp: int) -> SlotMaskTables:
    """The shared :class:`SlotMaskTables` for one ``spp``."""
    tables = _TABLES.get(spp)
    if tables is None:
        tables = _TABLES[spp] = SlotMaskTables(spp)
    return tables


class RegionState:
    """Flat structure-of-arrays state for one region's blocks.

    Mutated only through :class:`~repro.nand.block.Block` methods (the
    S002 lint rule confines writes to ``nand/block.py``/``nand/state.py``
    so the watcher callbacks — ``RegionCounters``, ``VictimIndex`` — and
    the derived per-page masks always see every change).
    """

    __slots__ = (
        "n_blocks", "pages", "spp", "slc", "block_stride",
        "programmed", "valid", "slot_lsn",
        "slot_time", "slot_program_time", "disturb_in", "disturb_nb",
        "program_count", "page_updated",
        "erase_count", "state_code", "level",
        "tables",
    )

    # Unit vocabulary for the dimensioned columns (bare annotations are
    # ``__slots__``-compatible; the unit checker reads the element
    # dimension through them — see ``repro.units``).
    slot_lsn: LsnArray
    slot_time: MsArray
    slot_program_time: MsArray
    erase_count: PeCyclesArray

    def __init__(self, n_blocks: int, pages: int, spp: int, slc: bool):
        self.n_blocks = n_blocks
        self.pages = pages
        self.spp = spp
        self.slc = slc
        self.block_stride = pages * spp
        n_slots = n_blocks * pages * spp
        n_pages = n_blocks * pages

        self.programmed = np.zeros(n_slots, dtype=bool)
        self.valid = np.zeros(n_slots, dtype=bool)
        self.slot_lsn = np.full(n_slots, NO_LSN, dtype=np.int64)
        self.program_count = np.zeros(n_pages, dtype=np.uint8)
        if slc:
            self.slot_time = np.zeros(n_slots, dtype=np.float64)
            self.slot_program_time = np.zeros(n_slots, dtype=np.float64)
            self.disturb_in = np.zeros(n_slots, dtype=np.int64)
            self.disturb_nb = np.zeros(n_slots, dtype=np.int64)
            self.page_updated = np.zeros(n_pages, dtype=bool)
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None
        self.erase_count = np.zeros(n_blocks, dtype=np.int64)
        #: ``BLOCK_STATE_CODES`` of each block's lifecycle state (FREE=0).
        self.state_code = np.zeros(n_blocks, dtype=np.uint8)
        #: Block-level label; -1 when the block carries none.
        self.level = np.full(n_blocks, -1, dtype=np.int16)
        self.tables = mask_tables(spp)
