"""The flash array: every physical operation goes through here.

:class:`FlashArray` owns the :class:`~repro.nand.block.Block` objects,
splits them into the SLC-mode cache region and the native high-density
region (striped across planes so both regions enjoy full parallelism),
enforces physical constraints, applies program-disturb bookkeeping, and
answers read-time RBER queries through the :class:`~repro.error.RberModel`.

It is policy-free: which block to write, when to collect garbage and where
to move data are FTL decisions (:mod:`repro.ftl`, :mod:`repro.core`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, NamedTuple

import numpy as np

from ..config import SSDConfig
from ..error import RberModel
from ..errors import FlashError
from .block import Block, BlockState
from .cell import CellMode
from .geometry import Geometry
from .state import RegionState
from ..units import Lsn, Ms

if TYPE_CHECKING:
    from ..faults.plan import FaultPlan


class ProgramResult(NamedTuple):
    """Outcome of one program operation."""

    partial: bool            #: True if the pass re-programmed a used page
    disturbed_valid: int     #: valid in-page subpages hit by disturb


class RegionCounters:
    """O(1) occupancy counters for one region.

    Maintained by :class:`~repro.nand.block.Block` watcher callbacks on
    program/invalidate/erase/open, so :meth:`FlashArray.region_summary`
    never re-sums every block.  ``note_erase`` runs *before* the block
    resets its own counters, so the departing occupancy is still visible.
    """

    __slots__ = ("blocks", "free_blocks", "valid_subpages",
                 "invalid_subpages", "programmed_subpages")

    def __init__(self, region_blocks: list[Block]):
        self.blocks = len(region_blocks)
        self.free_blocks = 0
        self.valid_subpages = 0
        self.invalid_subpages = 0
        self.programmed_subpages = 0
        for block in region_blocks:
            block.counters = self
            if block.state is BlockState.FREE:
                self.free_blocks += 1
            self.valid_subpages += block.n_valid
            self.invalid_subpages += block.n_invalid
            self.programmed_subpages += block.n_programmed

    def note_open(self) -> None:
        self.free_blocks -= 1

    def note_program(self, n: int) -> None:
        self.programmed_subpages += n
        self.valid_subpages += n

    def note_invalidate(self) -> None:
        self.valid_subpages -= 1
        self.invalid_subpages += 1

    def note_invalidate_many(self, n: int) -> None:
        # Batched form of ``note_invalidate`` (integer adds commute, so
        # one call for n slots is exactly n single-slot calls).
        self.valid_subpages -= n
        self.invalid_subpages += n

    def note_erase(self, block: Block) -> None:
        self.free_blocks += 1
        self.valid_subpages -= block.n_valid
        self.invalid_subpages -= block.n_invalid
        self.programmed_subpages -= block.n_programmed

    def note_retire(self) -> None:
        # A block retires from the just-erased FREE state, so it leaves
        # the free population; its content counters are already zero.
        self.free_blocks -= 1


class FlashArray:
    """Physical flash device: blocks, regions, wear and disturb."""

    def __init__(self, config: SSDConfig, rber: RberModel | None = None):
        config.validate()
        self.config = config
        self.geometry = Geometry(config.geometry)
        self.rber = rber if rber is not None else RberModel(config.reliability)
        g = self.geometry

        slc_per_plane = max(1, round(g.blocks_per_plane * config.cache.slc_ratio))
        if slc_per_plane >= g.blocks_per_plane:
            raise FlashError("SLC ratio leaves no high-density blocks in a plane")

        self.blocks: list[Block] = []
        self.slc_block_ids: list[int] = []
        self.mlc_block_ids: list[int] = []
        modes = []
        for block_id in range(g.total_blocks):
            in_plane = block_id % g.blocks_per_plane
            mode = CellMode.SLC if in_plane < slc_per_plane else CellMode.MLC
            modes.append(mode)
            (self.slc_block_ids if mode.is_slc else self.mlc_block_ids).append(block_id)

        # One structure-of-arrays store per region; every block is a thin
        # view over its stripe (block ids are striped across planes, so a
        # block's slot in its region is its rank among same-mode ids).
        self.slc_state = RegionState(
            len(self.slc_block_ids), g.pages_per_block(True),
            g.subpages_per_page, slc=True)
        self.mlc_state = RegionState(
            len(self.mlc_block_ids), g.pages_per_block(False),
            g.subpages_per_page, slc=False)
        region_slots = {True: 0, False: 0}
        for block_id in range(g.total_blocks):
            mode = modes[block_id]
            region = self.slc_state if mode.is_slc else self.mlc_state
            slot = region_slots[mode.is_slc]
            region_slots[mode.is_slc] = slot + 1
            self.blocks.append(Block(
                block_id, mode, g.pages_per_block(mode.is_slc),
                g.subpages_per_page, region=region, region_slot=slot))

        self.slc_counters = RegionCounters([self.blocks[i] for i in self.slc_block_ids])
        self.mlc_counters = RegionCounters([self.blocks[i] for i in self.mlc_block_ids])

        self.erases_slc = 0
        self.erases_mlc = 0
        self.programs_slc = 0
        self.programs_mlc = 0
        self.partial_programs = 0
        self.disturbed_valid_subpages = 0
        #: Optional :class:`repro.faults.FaultPlan`.  When attached, every
        #: erase consults it: a sampled erase failure or an earlier
        #: program-failure condemnation retires the block instead of
        #: returning it to service.  ``None`` (the default) keeps the
        #: erase path bit-identical to a device without fault injection.
        self.faults: "FaultPlan | None" = None

    # -- queries ----------------------------------------------------------

    def block(self, block_id: int) -> Block:
        """The block object for ``block_id``."""
        return self.blocks[block_id]

    def effective_pe(self, block_id: int) -> int:
        """Wear age used by the RBER model: assumed initial age plus the
        erases this simulation performed."""
        return self.config.reliability.initial_pe_cycles + self.blocks[block_id].erase_count

    def region_blocks(self, slc: bool) -> list[Block]:
        """All blocks of one region."""
        ids = self.slc_block_ids if slc else self.mlc_block_ids
        return [self.blocks[i] for i in ids]

    def subpage_rbers(self, block_id: int, page: int, slots: Iterable[int],
                      now: Ms | None = None) -> np.ndarray:
        """Current RBER of the given subpages (no access-time side effect).

        ``now`` enables the optional retention-loss term (data ages since
        its program time); omit it to evaluate disturb and wear only.
        """
        block = self.blocks[block_id]
        pe = self.effective_pe(block_id)
        slot_list = list(slots)
        rel = self.config.reliability
        extra = (block.read_count * rel.read_disturb_unit_ratio
                 * self.rber.disturb_unit(pe)
                 if rel.read_disturb_unit_ratio else 0.0)
        if block.is_slc:
            if len(slot_list) == 1:
                # Scalar fast path for the dominant single-subpage read:
                # the arithmetic mirrors ``subpage_rber_array`` operation
                # for operation, so the value is bit-identical to the
                # vectorised gather below.
                s = slot_list[0]
                unit = self.rber.disturb_unit(pe)
                ratio = rel.neighbor_disturb_ratio
                value = self.rber.base(pe, True) + unit * (
                    float(block.disturb_in[page][s])
                    + ratio * float(block.disturb_nb[page][s]))
                value = value + extra
                if rel.retention_unit_per_ms and now is not None:
                    age = now - float(block.slot_program_time[page, s])
                    value = value + (max(age, 0.0)
                                     * rel.retention_unit_per_ms * unit)
                return np.array([value], dtype=np.float64)
            irow = block.disturb_in[page]
            nrow = block.disturb_nb[page]
            n_in = np.array([irow[s] for s in slot_list], dtype=np.float64)
            n_nb = np.array([nrow[s] for s in slot_list], dtype=np.float64)
            rbers = self.rber.subpage_rber_array(pe, True, n_in, n_nb) + extra
            if rel.retention_unit_per_ms and now is not None:
                ages = now - block.slot_program_time[page, slot_list]
                rbers = rbers + (np.maximum(ages, 0.0)
                                 * rel.retention_unit_per_ms
                                 * self.rber.disturb_unit(pe))
            return rbers
        base = self.rber.base(pe, slc=False) + extra
        return np.full(len(slot_list), base, dtype=np.float64)

    # -- operations ---------------------------------------------------------

    def program(
        self,
        block_id: int,
        page: int,
        slots: list[int],
        lsns: list[Lsn],
        now: Ms,
    ) -> ProgramResult:
        """Program subpages; applies disturb when the pass is partial."""
        block = self.blocks[block_id]
        partial, disturbed = block.program_disturb(
            page, slots, lsns, now, self.config.reliability.max_page_programs
        )
        if partial:
            self.partial_programs += 1
            self.disturbed_valid_subpages += disturbed
        if block.is_slc:
            self.programs_slc += 1
        else:
            self.programs_mlc += 1
        return ProgramResult(partial=partial, disturbed_valid=disturbed)

    def reprogram(self, block_id: int, page: int) -> ProgramResult:
        """Byte-granular partial pass inside already-programmed slots."""
        block = self.blocks[block_id]
        disturbed = block.reprogram_pass(
            page, self.config.reliability.max_page_programs)
        self.partial_programs += 1
        self.disturbed_valid_subpages += disturbed
        if block.is_slc:
            self.programs_slc += 1
        else:  # pragma: no cover - reprogram_pass already rejects MLC
            self.programs_mlc += 1
        return ProgramResult(partial=True, disturbed_valid=disturbed)

    def read(self, block_id: int, page: int, slots: list[int], now: Ms) -> np.ndarray:
        """Read subpages: returns their RBERs and refreshes access times."""
        block = self.blocks[block_id]
        pmask = block.prog_mask[page]
        for slot in slots:
            if not pmask >> slot & 1:
                raise FlashError(
                    f"block {block_id} page {page} slot {slot}: "
                    f"read of unwritten subpage")
        rbers = self.subpage_rbers(block_id, page, slots, now=now)
        block.read_count += 1
        block.touch(page, slots, now)
        return rbers

    def read_list(self, block_id: int, page: int, slots: list[int],
                  now: Ms) -> "list[float]":
        """Scalar fast path of :meth:`read`: RBERs as python floats.

        Same checks and side effects; every value mirrors the
        ``subpage_rbers`` arithmetic operation-for-operation over IEEE
        doubles (python float arithmetic *is* elementwise float64), so
        the list is bit-identical to the array form — without building
        any array for the dominant 1–4 subpage read.
        """
        block = self.blocks[block_id]
        pmask = block.prog_mask[page]
        for slot in slots:
            if not pmask >> slot & 1:
                raise FlashError(
                    f"block {block_id} page {page} slot {slot}: "
                    f"read of unwritten subpage")
        rel = self.config.reliability
        pe = rel.initial_pe_cycles + block.erase_count
        rber = self.rber
        region = block.region
        jbase = block._base + page * block.spp
        if block.is_slc:
            unit = rber.disturb_unit(pe)
            extra = (block.read_count * rel.read_disturb_unit_ratio * unit
                     if rel.read_disturb_unit_ratio else 0.0)
            base = rber.base(pe, True)
            ratio = rel.neighbor_disturb_ratio
            disturb_in = region.disturb_in
            disturb_nb = region.disturb_nb
            time_f = region.slot_time
            retention = rel.retention_unit_per_ms
            values = []
            for slot in slots:
                j = jbase + slot
                value = base + unit * (float(disturb_in[j])
                                       + ratio * float(disturb_nb[j]))
                value = value + extra
                if retention:
                    age = now - float(region.slot_program_time[j])
                    value = value + max(age, 0.0) * retention * unit
                values.append(value)
                time_f[j] = now
        else:
            extra = (block.read_count * rel.read_disturb_unit_ratio
                     * rber.disturb_unit(pe)
                     if rel.read_disturb_unit_ratio else 0.0)
            value = rber.base(pe, slc=False) + extra
            values = [value] * len(slots)
        block.read_count += 1
        return values

    def read_span(self, block_id: int, spans: "list[tuple[int, list[int]]]",
                  now: Ms) -> "tuple[np.ndarray, list[int]]":
        """Batched read pricing: several pages of one block in one kernel.

        ``spans`` lists ``(page, slots)`` in read order; the return value
        is the concatenated per-slot RBER array plus each page's start
        offset into it.  Side effects and values match per-page
        :meth:`read` calls in sequence exactly: access times refresh,
        ``read_count`` advances once per page, and the read-disturb term
        of page ``k`` is evaluated at ``read_count + k`` just as the
        sequential loop would.  Only safe when nothing between the
        sequential reads could change this block's disturb/retention
        state — the GC drain qualifies (relocations touch *other*
        blocks and only invalidate already-read pages of the victim).
        """
        block = self.blocks[block_id]
        spp = block.spp
        base_index = block._base
        prog_mask = block.prog_mask
        offsets: list[int] = []
        flat: list[int] = []
        for page, slots in spans:
            pmask = prog_mask[page]
            offsets.append(len(flat))
            jbase = base_index + page * spp
            for slot in slots:
                if not pmask >> slot & 1:
                    raise FlashError(
                        f"block {block_id} page {page} slot {slot}: "
                        f"read of unwritten subpage")
                flat.append(jbase + slot)
        j = np.array(flat, dtype=np.intp)
        rel = self.config.reliability
        pe = rel.initial_pe_cycles + block.erase_count
        region = block.region
        if block.is_slc:
            rbers = self.rber.rber_many(
                pe, True, region.disturb_in[j], region.disturb_nb[j])
        else:
            rbers = np.full(len(flat), self.rber.base(pe, slc=False),
                            dtype=np.float64)
        if rel.read_disturb_unit_ratio:
            unit = self.rber.disturb_unit(pe)
            read_count = block.read_count
            end = len(flat)
            for k in range(len(spans) - 1, -1, -1):
                extra = (read_count + k) * rel.read_disturb_unit_ratio * unit
                rbers[offsets[k]:end] = rbers[offsets[k]:end] + extra
                end = offsets[k]
        if block.is_slc:
            if rel.retention_unit_per_ms:
                ages = now - region.slot_program_time[j]
                rbers = rbers + (np.maximum(ages, 0.0)
                                 * rel.retention_unit_per_ms
                                 * self.rber.disturb_unit(pe))
            region.slot_time[j] = now
        block.read_count += len(spans)
        return rbers, offsets

    def invalidate(self, block_id: int, page: int, slot: int) -> None:
        """Invalidate one live subpage."""
        self.blocks[block_id].invalidate(page, slot)

    def invalidate_many(self, block_id: int, page: int,
                        slots: "list[int]") -> None:
        """Invalidate several live subpages of one page in one pass.

        Equivalent to invalidating each slot in sequence (the relocation
        and rewrite hoists use it to skip the per-slot call frames)."""
        self.blocks[block_id].invalidate_many(page, slots)

    def erase(self, block_id: int) -> int:
        """Erase a drained block; returns its new erase count.

        With a fault plan attached the erase may *fail*: the pulse still
        runs (wear and latency are charged) but the block is retired into
        the bad-block table instead of rejoining the free population.
        Callers observe this through ``block.state`` (RETIRED vs FREE).
        """
        block = self.blocks[block_id]
        block.erase()
        if block.is_slc:
            self.erases_slc += 1
        else:
            self.erases_mlc += 1
        faults = self.faults
        if faults is not None and faults.should_retire_after_erase(block):
            block.retire()
        return block.erase_count

    # -- statistics -----------------------------------------------------------

    def erase_counts(self, slc: bool) -> np.ndarray:
        """Per-block erase counters of one region."""
        return np.array([b.erase_count for b in self.region_blocks(slc)], dtype=np.int64)

    def region_summary(self, slc: bool) -> dict[str, float]:
        """Aggregate occupancy snapshot of one region (O(1): served from
        :class:`RegionCounters`, which the blocks keep current)."""
        counters = self.slc_counters if slc else self.mlc_counters
        return {
            "blocks": counters.blocks,
            "free_blocks": counters.free_blocks,
            "valid_subpages": counters.valid_subpages,
            "invalid_subpages": counters.invalid_subpages,
            "programmed_subpages": counters.programmed_subpages,
            "erases": self.erases_slc if slc else self.erases_mlc,
        }

    def verify_region_counters(self) -> None:
        """Assert the incremental region counters agree with a naive
        re-scan of every block (consistency-hook support)."""
        for slc, counters in ((True, self.slc_counters), (False, self.mlc_counters)):
            blocks = self.region_blocks(slc)
            naive = {
                "blocks": len(blocks),
                "free_blocks": sum(1 for b in blocks if b.state is BlockState.FREE),
                "valid_subpages": sum(b.n_valid for b in blocks),
                "invalid_subpages": sum(b.n_invalid for b in blocks),
                "programmed_subpages": sum(b.n_programmed for b in blocks),
            }
            kept = {key: getattr(counters, key) for key in naive}
            if kept != naive:
                raise FlashError(
                    f"region counters drifted ({'SLC' if slc else 'MLC'}): "
                    f"incremental {kept} != rescan {naive}")
            for b in blocks:
                # Per-block mirrors (page counters, slot bitmasks, the
                # per-block columns of the region arrays) are checked by
                # the block itself against its authoritative arrays.
                b.verify_array_state()
