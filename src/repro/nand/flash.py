"""The flash array: every physical operation goes through here.

:class:`FlashArray` owns the :class:`~repro.nand.block.Block` objects,
splits them into the SLC-mode cache region and the native high-density
region (striped across planes so both regions enjoy full parallelism),
enforces physical constraints, applies program-disturb bookkeeping, and
answers read-time RBER queries through the :class:`~repro.error.RberModel`.

It is policy-free: which block to write, when to collect garbage and where
to move data are FTL decisions (:mod:`repro.ftl`, :mod:`repro.core`).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from ..config import SSDConfig
from ..error import RberModel
from ..errors import FlashError
from .block import Block, BlockState
from .cell import CellMode
from .geometry import Geometry


class ProgramResult(NamedTuple):
    """Outcome of one program operation."""

    partial: bool            #: True if the pass re-programmed a used page
    disturbed_valid: int     #: valid in-page subpages hit by disturb


class FlashArray:
    """Physical flash device: blocks, regions, wear and disturb."""

    def __init__(self, config: SSDConfig, rber: RberModel | None = None):
        config.validate()
        self.config = config
        self.geometry = Geometry(config.geometry)
        self.rber = rber if rber is not None else RberModel(config.reliability)
        g = self.geometry

        slc_per_plane = max(1, round(g.blocks_per_plane * config.cache.slc_ratio))
        if slc_per_plane >= g.blocks_per_plane:
            raise FlashError("SLC ratio leaves no high-density blocks in a plane")

        self.blocks: list[Block] = []
        self.slc_block_ids: list[int] = []
        self.mlc_block_ids: list[int] = []
        for block_id in range(g.total_blocks):
            in_plane = block_id % g.blocks_per_plane
            mode = CellMode.SLC if in_plane < slc_per_plane else CellMode.MLC
            pages = g.pages_per_block(mode.is_slc)
            self.blocks.append(Block(block_id, mode, pages, g.subpages_per_page))
            (self.slc_block_ids if mode.is_slc else self.mlc_block_ids).append(block_id)

        self.erases_slc = 0
        self.erases_mlc = 0
        self.programs_slc = 0
        self.programs_mlc = 0
        self.partial_programs = 0
        self.disturbed_valid_subpages = 0

    # -- queries ----------------------------------------------------------

    def block(self, block_id: int) -> Block:
        """The block object for ``block_id``."""
        return self.blocks[block_id]

    def effective_pe(self, block_id: int) -> int:
        """Wear age used by the RBER model: assumed initial age plus the
        erases this simulation performed."""
        return self.config.reliability.initial_pe_cycles + self.blocks[block_id].erase_count

    def region_blocks(self, slc: bool) -> list[Block]:
        """All blocks of one region."""
        ids = self.slc_block_ids if slc else self.mlc_block_ids
        return [self.blocks[i] for i in ids]

    def subpage_rbers(self, block_id: int, page: int, slots: Iterable[int],
                      now: float | None = None) -> np.ndarray:
        """Current RBER of the given subpages (no access-time side effect).

        ``now`` enables the optional retention-loss term (data ages since
        its program time); omit it to evaluate disturb and wear only.
        """
        block = self.blocks[block_id]
        pe = self.effective_pe(block_id)
        slot_list = list(slots)
        rel = self.config.reliability
        extra = (block.read_count * rel.read_disturb_unit_ratio
                 * self.rber.disturb_unit(pe)
                 if rel.read_disturb_unit_ratio else 0.0)
        if block.mode.is_slc:
            n_in = block.disturb_in[page, slot_list]
            n_nb = block.disturb_nb[page, slot_list]
            rbers = self.rber.subpage_rber_array(pe, True, n_in, n_nb) + extra
            if rel.retention_unit_per_ms and now is not None:
                ages = now - block.slot_program_time[page, slot_list]
                rbers = rbers + (np.maximum(ages, 0.0)
                                 * rel.retention_unit_per_ms
                                 * self.rber.disturb_unit(pe))
            return rbers
        base = self.rber.base(pe, slc=False) + extra
        return np.full(len(slot_list), base, dtype=np.float64)

    # -- operations ---------------------------------------------------------

    def program(
        self,
        block_id: int,
        page: int,
        slots: list[int],
        lsns: list[int],
        now: float,
    ) -> ProgramResult:
        """Program subpages; applies disturb when the pass is partial."""
        block = self.blocks[block_id]
        partial = block.program(
            page, slots, lsns, now, self.config.reliability.max_page_programs
        )
        disturbed = 0
        if partial:
            disturbed = block.add_disturb(page, slots)
            self.partial_programs += 1
            self.disturbed_valid_subpages += disturbed
        if block.mode.is_slc:
            self.programs_slc += 1
        else:
            self.programs_mlc += 1
        return ProgramResult(partial=partial, disturbed_valid=disturbed)

    def reprogram(self, block_id: int, page: int) -> ProgramResult:
        """Byte-granular partial pass inside already-programmed slots."""
        block = self.blocks[block_id]
        disturbed = block.reprogram_pass(
            page, self.config.reliability.max_page_programs)
        self.partial_programs += 1
        self.disturbed_valid_subpages += disturbed
        if block.mode.is_slc:
            self.programs_slc += 1
        else:  # pragma: no cover - reprogram_pass already rejects MLC
            self.programs_mlc += 1
        return ProgramResult(partial=True, disturbed_valid=disturbed)

    def read(self, block_id: int, page: int, slots: list[int], now: float) -> np.ndarray:
        """Read subpages: returns their RBERs and refreshes access times."""
        block = self.blocks[block_id]
        for slot in slots:
            if not block.programmed[page, slot]:
                raise FlashError(
                    f"block {block_id} page {page} slot {slot}: read of unwritten subpage")
        rbers = self.subpage_rbers(block_id, page, slots, now=now)
        block.read_count += 1
        block.touch(page, slots, now)
        return rbers

    def invalidate(self, block_id: int, page: int, slot: int) -> None:
        """Invalidate one live subpage."""
        self.blocks[block_id].invalidate(page, slot)

    def erase(self, block_id: int) -> int:
        """Erase a drained block; returns its new erase count."""
        block = self.blocks[block_id]
        block.erase()
        if block.mode.is_slc:
            self.erases_slc += 1
        else:
            self.erases_mlc += 1
        return block.erase_count

    # -- statistics -----------------------------------------------------------

    def erase_counts(self, slc: bool) -> np.ndarray:
        """Per-block erase counters of one region."""
        return np.array([b.erase_count for b in self.region_blocks(slc)], dtype=np.int64)

    def region_summary(self, slc: bool) -> dict[str, float]:
        """Aggregate occupancy snapshot of one region."""
        blocks = self.region_blocks(slc)
        return {
            "blocks": len(blocks),
            "free_blocks": sum(1 for b in blocks if b.state is BlockState.FREE),
            "valid_subpages": sum(b.n_valid for b in blocks),
            "invalid_subpages": sum(b.n_invalid for b in blocks),
            "programmed_subpages": sum(b.n_programmed for b in blocks),
            "erases": self.erases_slc if slc else self.erases_mlc,
        }
