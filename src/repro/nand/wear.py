"""Wear statistics and the static wear-levelling trigger (Table 2).

*Static* wear levelling periodically relocates long-resident (cold) data
out of the least-worn blocks so those blocks re-enter the free pool and
absorb future writes, keeping the erase-count spread of a region bounded.
The actual data movement is performed by the FTL's GC machinery; this
module decides *when* to level and *which* block to relocate.
"""

from __future__ import annotations

from ..config import CacheConfig
from ..units import PeCycles
from .block import Block, BlockState


class WearTracker:
    """Erase accounting and static wear-levelling decisions for one region."""

    def __init__(self, blocks: list[Block], cache: CacheConfig):
        cache.validate()
        self.blocks = blocks
        self.cache = cache
        self.erases_since_check = 0
        self.leveling_moves = 0

    def note_erase(self) -> None:
        """Record one erase in this region."""
        self.erases_since_check += 1

    @property
    def min_erase(self) -> PeCycles:
        """Smallest per-block erase count in the region."""
        return min(b.erase_count for b in self.blocks)

    @property
    def max_erase(self) -> PeCycles:
        """Largest per-block erase count in the region."""
        return max(b.erase_count for b in self.blocks)

    @property
    def spread(self) -> PeCycles:
        """Erase-count gap between the most and least worn block."""
        return self.max_erase - self.min_erase

    def should_level(self) -> bool:
        """Whether a static wear-levelling pass is due."""
        if not self.cache.static_wear_leveling:
            return False
        if self.erases_since_check < self.cache.wear_leveling_period:
            return False
        self.erases_since_check = 0
        return self.spread > self.cache.wear_leveling_gap

    def coldest_block(self) -> Block | None:
        """Pick the relocation source: the least-worn block holding data.

        Low wear means the block's content has not been rewritten in a long
        time, i.e. it hosts cold data sitting on healthy cells.
        """
        candidates = [
            b for b in self.blocks
            if b.state is BlockState.FULL and b.n_valid > 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda b: (b.erase_count, b.block_id))

    def most_worn_free(self) -> Block | None:
        """Pick the relocation target: the most-worn free block, which the
        cold data will park on."""
        candidates = [b for b in self.blocks if b.state is BlockState.FREE]
        if not candidates:
            return None
        return max(candidates, key=lambda b: (b.erase_count, -b.block_id))

    def summary(self) -> dict[str, int]:
        """Wear statistics snapshot."""
        return {
            "min_erase": self.min_erase,
            "max_erase": self.max_erase,
            "spread": self.spread,
            "leveling_moves": self.leveling_moves,
        }
