"""Per-block state: page/subpage occupancy, wear, disturb counters.

A block is the erase unit.  Pages inside a block must be programmed in
sequential order (``next_page`` pointer), as real NAND requires.  Each
16 KiB page holds four 4 KiB *subpage slots*; SLC-mode pages may be
programmed multiple times ("partial programming"), filling previously
unwritten slots, up to a manufacturer limit on program passes.

Subpage taxonomy used throughout:

* **valid** - programmed and holding live data,
* **invalid** - programmed, later invalidated by an update or move,
* **free** - never programmed since the last erase.  In a fully-programmed
  Baseline block free slots are wasted space (internal fragmentation); in an
  IPU block they are the landing zone for intra-page updates.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import (
    EraseError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from .cell import CellMode

#: Sentinel stored in ``slot_lsn`` for a slot that never held data.
NO_LSN: int = -1


class BlockState(enum.Enum):
    """Lifecycle of a block between erases."""

    FREE = "free"        #: erased, not yet allocated
    OPEN = "open"        #: allocated, accepting new pages
    FULL = "full"        #: every page programmed at least once
    VICTIM = "victim"    #: selected for GC, being drained


class Block:
    """State of one physical block.

    Disturb and access-time arrays are only allocated for SLC-mode blocks;
    native MLC blocks are always conventionally programmed exactly once per
    page, so their reliability is captured by the base RBER curve alone.
    """

    __slots__ = (
        "block_id", "mode", "pages", "spp", "erase_count", "next_page",
        "state", "level", "programmed", "valid", "program_count",
        "slot_lsn", "slot_time", "slot_program_time", "disturb_in",
        "disturb_nb", "page_updated",
        "n_valid", "n_invalid", "n_programmed", "alloc_time", "content_epoch",
        "read_count",
    )

    def __init__(self, block_id: int, mode: CellMode, pages: int, subpages_per_page: int):
        self.block_id = block_id
        self.mode = mode
        self.pages = pages
        self.spp = subpages_per_page
        self.erase_count = 0
        self.next_page = 0
        self.state = BlockState.FREE
        #: Block-level label (see :mod:`repro.core.levels`); ``None`` when free.
        self.level: int | None = None
        self.alloc_time = 0.0

        self.programmed = np.zeros((pages, subpages_per_page), dtype=bool)
        self.valid = np.zeros((pages, subpages_per_page), dtype=bool)
        self.program_count = np.zeros(pages, dtype=np.uint8)
        self.slot_lsn = np.full((pages, subpages_per_page), NO_LSN, dtype=np.int64)
        if mode.is_slc:
            self.slot_time = np.zeros((pages, subpages_per_page), dtype=np.float64)
            #: Program time, never refreshed by reads (retention ages from
            #: here; ``slot_time`` is the last *access* Equation 2 uses).
            self.slot_program_time = np.zeros((pages, subpages_per_page),
                                              dtype=np.float64)
            self.disturb_in = np.zeros((pages, subpages_per_page), dtype=np.uint32)
            self.disturb_nb = np.zeros((pages, subpages_per_page), dtype=np.uint32)
            self.page_updated = np.zeros(pages, dtype=bool)
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None

        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        #: Bumped on every content mutation; lets the stored-IS' cache of
        #: the ISR policy detect staleness cheaply.
        self.content_epoch = 0
        #: Reads served by this block since its last erase (read disturb).
        self.read_count = 0

    # -- capacity queries ----------------------------------------------

    @property
    def total_subpages(self) -> int:
        """``TS_i`` of Equation 1."""
        return self.pages * self.spp

    @property
    def is_full(self) -> bool:
        """True once every page received its initial program pass."""
        return self.next_page >= self.pages

    @property
    def reclaimable_subpages(self) -> int:
        """Subpages freed by collecting this block (everything non-valid)."""
        return self.total_subpages - self.n_valid

    def free_slots_of_page(self, page: int) -> list[int]:
        """Unprogrammed slot indices of ``page`` (ascending)."""
        row = self.programmed[page]
        return [s for s in range(self.spp) if not row[s]]

    def valid_slots_of_page(self, page: int) -> list[int]:
        """Slot indices of ``page`` currently holding live data."""
        row = self.valid[page]
        return [s for s in range(self.spp) if row[s]]

    def can_partial_program(self, page: int, nslots: int, max_programs: int) -> bool:
        """Whether ``nslots`` more subpages fit into ``page`` in one more pass."""
        if not 0 <= page < self.next_page:
            return False
        if self.program_count[page] >= max_programs:
            return False
        return int((~self.programmed[page]).sum()) >= nslots

    # -- mutation -------------------------------------------------------

    def program(self, page: int, slots: list[int], lsns: list[int], now: float,
                max_programs: int) -> bool:
        """Program ``lsns`` into ``slots`` of ``page``; return True if the
        pass was a *partial* program of an already-programmed page.

        Raises on out-of-order initial programs, slot reuse, or exceeding
        the per-page program-pass limit.
        """
        if len(slots) != len(lsns) or not slots:
            raise SubpageStateError(
                f"block {self.block_id}: slots/lsns mismatch ({slots} vs {lsns})")
        if len(set(slots)) != len(slots):
            raise SubpageStateError(f"block {self.block_id}: duplicate slots {slots}")
        if self.state not in (BlockState.OPEN, BlockState.FULL):
            raise SubpageStateError(
                f"block {self.block_id}: program while {self.state.value}")

        if page == self.next_page:
            partial = False
            self.next_page += 1
        elif 0 <= page < self.next_page:
            partial = True
            if not self.mode.is_slc:
                raise SubpageStateError(
                    f"block {self.block_id}: partial programming requires SLC mode")
            if self.program_count[page] >= max_programs:
                raise PartialProgramLimitError(
                    f"block {self.block_id} page {page}: "
                    f"{self.program_count[page]} passes >= limit {max_programs}")
        else:
            raise ProgramOrderError(
                f"block {self.block_id}: page {page} programmed out of order "
                f"(next free page is {self.next_page})")

        row = self.programmed[page]
        for slot in slots:
            if not 0 <= slot < self.spp:
                raise SubpageStateError(f"slot {slot} out of range [0, {self.spp})")
            if row[slot]:
                raise SubpageStateError(
                    f"block {self.block_id} page {page} slot {slot}: already programmed")

        for slot, lsn in zip(slots, lsns):
            row[slot] = True
            self.valid[page, slot] = True
            self.slot_lsn[page, slot] = lsn
            if self.mode.is_slc:
                self.slot_time[page, slot] = now
                self.slot_program_time[page, slot] = now
        self.program_count[page] += 1
        self.n_programmed += len(slots)
        self.n_valid += len(slots)
        if self.is_full and self.state is BlockState.OPEN:
            self.state = BlockState.FULL
        self.content_epoch += 1
        return partial

    def reprogram_pass(self, page: int, max_programs: int) -> int:
        """A partial-program pass that appends bytes inside slots that are
        already programmed (byte-granular partial programming, as in
        in-place delta compression).  No slot state changes, but the pass
        counts against the manufacturer limit and disturbs the page and
        its neighbours like any other pass.  Returns the number of valid
        in-page subpages disturbed."""
        if not self.mode.is_slc:
            raise SubpageStateError(
                f"block {self.block_id}: partial programming requires SLC mode")
        if not 0 <= page < self.next_page:
            raise ProgramOrderError(
                f"block {self.block_id}: reprogram of unwritten page {page}")
        if self.program_count[page] >= max_programs:
            raise PartialProgramLimitError(
                f"block {self.block_id} page {page}: "
                f"{self.program_count[page]} passes >= limit {max_programs}")
        self.program_count[page] += 1
        self.content_epoch += 1
        return self.add_disturb(page, [])

    def invalidate(self, page: int, slot: int) -> None:
        """Mark one live subpage obsolete."""
        if not self.valid[page, slot]:
            raise SubpageStateError(
                f"block {self.block_id} page {page} slot {slot}: not valid")
        self.valid[page, slot] = False
        self.n_valid -= 1
        self.n_invalid += 1
        self.content_epoch += 1

    def mark_page_updated(self, page: int) -> None:
        """Record that the data resident in ``page`` was updated while the
        page lived in this block (drives IPU's GC-time hot/cold split)."""
        if self.page_updated is not None:
            self.page_updated[page] = True
            self.content_epoch += 1

    def touch(self, page: int, slots: list[int], now: float) -> None:
        """Refresh the last-access time of subpages (reads count as access
        for the coldness estimate of Equation 2)."""
        if self.slot_time is not None:
            for slot in slots:
                self.slot_time[page, slot] = now

    def add_disturb(self, page: int, written_slots: list[int]) -> int:
        """Apply program-disturb bookkeeping for one partial-program pass.

        In-page disturb hits every *valid* already-programmed subpage of the
        page other than the slots just written; neighbouring-page disturb
        hits programmed subpages of pages ``page - 1`` and ``page + 1``.
        Returns the number of *valid* in-page subpages disturbed (the
        quantity IPU eliminates).
        """
        if self.disturb_in is None:
            raise SubpageStateError("disturb tracking only exists for SLC-mode blocks")
        written = set(written_slots)
        hit_valid = 0
        for slot in range(self.spp):
            if slot in written or not self.programmed[page, slot]:
                continue
            self.disturb_in[page, slot] += 1
            if self.valid[page, slot]:
                hit_valid += 1
        for npage in (page - 1, page + 1):
            if 0 <= npage < self.next_page:
                mask = self.programmed[npage]
                self.disturb_nb[npage][mask] += 1
        return hit_valid

    def erase(self) -> None:
        """Erase the block.  All data must have been moved out already."""
        if self.n_valid != 0:
            raise EraseError(
                f"block {self.block_id}: erase with {self.n_valid} valid subpages")
        if self.state is BlockState.FREE:
            raise EraseError(f"block {self.block_id}: erase of a free block")
        self.erase_count += 1
        self.next_page = 0
        self.state = BlockState.FREE
        self.level = None
        self.programmed[:] = False
        self.valid[:] = False
        self.program_count[:] = 0
        self.slot_lsn[:] = NO_LSN
        if self.mode.is_slc:
            self.slot_time[:] = 0.0
            self.slot_program_time[:] = 0.0
            self.disturb_in[:] = 0
            self.disturb_nb[:] = 0
            self.page_updated[:] = False
        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        self.content_epoch += 1
        self.read_count = 0

    def open_as(self, level: int, now: float) -> None:
        """Transition a free block to OPEN with a block-level label."""
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: open while {self.state.value}")
        self.state = BlockState.OPEN
        self.level = level
        self.alloc_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Block({self.block_id}, {self.mode.value}, {self.state.value}, "
                f"level={self.level}, next_page={self.next_page}, "
                f"valid={self.n_valid}, invalid={self.n_invalid})")
