"""Per-block state: page/subpage occupancy, wear, disturb counters.

A block is the erase unit.  Pages inside a block must be programmed in
sequential order (``next_page`` pointer), as real NAND requires.  Each
16 KiB page holds four 4 KiB *subpage slots*; SLC-mode pages may be
programmed multiple times ("partial programming"), filling previously
unwritten slots, up to a manufacturer limit on program passes.

Subpage taxonomy used throughout:

* **valid** - programmed and holding live data,
* **invalid** - programmed, later invalidated by an update or move,
* **free** - never programmed since the last erase.  In a fully-programmed
  Baseline block free slots are wasted space (internal fragmentation); in an
  IPU block they are the landing zone for intra-page updates.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import (
    EraseError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from .cell import CellMode
from ..units import Lsn, Ms, PeCycles

#: Sentinel stored in ``slot_lsn`` for a slot that never held data.
NO_LSN: int = -1


class BlockState(enum.Enum):
    """Lifecycle of a block between erases."""

    FREE = "free"        #: erased, not yet allocated
    OPEN = "open"        #: allocated, accepting new pages
    FULL = "full"        #: every page programmed at least once
    VICTIM = "victim"    #: selected for GC, being drained
    RETIRED = "retired"  #: grown bad block, permanently out of service


class Block:
    """State of one physical block.

    Disturb and access-time arrays are only allocated for SLC-mode blocks;
    native MLC blocks are always conventionally programmed exactly once per
    page, so their reliability is captured by the base RBER curve alone.
    """

    __slots__ = (
        "block_id", "mode", "is_slc", "pages", "spp", "erase_count", "next_page",
        "state", "level", "programmed", "valid", "program_count",
        "slot_lsn", "slot_time", "slot_program_time", "disturb_in",
        "disturb_nb", "page_updated",
        "n_valid", "n_invalid", "n_programmed", "alloc_time", "content_epoch",
        "read_count", "page_valid", "page_programmed", "pages_with_valid",
        "counters", "index",
    )

    def __init__(self, block_id: int, mode: CellMode, pages: int, subpages_per_page: int):
        self.block_id = block_id
        self.mode = mode
        #: Cached ``mode.is_slc`` — the enum property is too hot to call
        #: per operation, and a block's mode never changes.
        self.is_slc = mode.is_slc
        self.pages = pages
        self.spp = subpages_per_page
        self.erase_count: PeCycles = 0
        self.next_page = 0
        self.state = BlockState.FREE
        #: Block-level label (see :mod:`repro.core.levels`); ``None`` when free.
        self.level: int | None = None
        self.alloc_time: Ms = 0.0

        self.programmed = np.zeros((pages, subpages_per_page), dtype=bool)
        self.valid = np.zeros((pages, subpages_per_page), dtype=bool)
        self.program_count = np.zeros(pages, dtype=np.uint8)
        self.slot_lsn = np.full((pages, subpages_per_page), NO_LSN, dtype=np.int64)
        if mode.is_slc:
            self.slot_time = np.zeros((pages, subpages_per_page), dtype=np.float64)
            #: Program time, never refreshed by reads (retention ages from
            #: here; ``slot_time`` is the last *access* Equation 2 uses).
            self.slot_program_time = np.zeros((pages, subpages_per_page),
                                              dtype=np.float64)
            # Disturb counters live as plain nested lists: they take one
            # increment per affected slot per partial pass and scalar
            # int arithmetic beats numpy element access by an order of
            # magnitude at subpage granularity.
            self.disturb_in = [[0] * subpages_per_page for _ in range(pages)]
            self.disturb_nb = [[0] * subpages_per_page for _ in range(pages)]
            self.page_updated = np.zeros(pages, dtype=bool)
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None

        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        #: Bumped on every content mutation; lets the stored-IS' cache of
        #: the ISR policy detect staleness cheaply.
        self.content_epoch = 0
        #: Reads served by this block since its last erase (read disturb).
        self.read_count = 0
        #: Per-page count of valid subpages and the number of pages with at
        #: least one valid subpage — maintained on program/invalidate/erase
        #: so whole-page victim scoring never rescans ``valid``.
        self.page_valid = [0] * pages
        #: Per-page count of programmed subpages — lets the disturb and
        #: partial-program checks skip re-summing ``programmed`` rows.
        self.page_programmed = [0] * pages
        self.pages_with_valid = 0
        #: Optional region-counter watcher (see
        #: :class:`repro.nand.flash.RegionCounters`); notified on
        #: program/invalidate/erase/open so region occupancy is O(1).
        self.counters = None
        #: Optional victim-score watcher (see
        #: :class:`repro.ftl.allocator.VictimIndex`); notified on content
        #: mutations and candidate-set transitions.
        self.index = None

    # -- capacity queries ----------------------------------------------

    @property
    def total_subpages(self) -> int:
        """``TS_i`` of Equation 1."""
        return self.pages * self.spp

    @property
    def is_full(self) -> bool:
        """True once every page received its initial program pass."""
        return self.next_page >= self.pages

    @property
    def reclaimable_subpages(self) -> int:
        """Subpages freed by collecting this block (everything non-valid)."""
        return self.total_subpages - self.n_valid

    def free_slots_of_page(self, page: int) -> list[int]:
        """Unprogrammed slot indices of ``page`` (ascending)."""
        if self.page_programmed[page] == self.spp:
            return []
        row = self.programmed[page].tolist()
        return [s for s, hit in enumerate(row) if not hit]

    def valid_slots_of_page(self, page: int) -> list[int]:
        """Slot indices of ``page`` currently holding live data."""
        if self.page_valid[page] == 0:
            return []
        row = self.valid[page].tolist()
        return [s for s, hit in enumerate(row) if hit]

    def can_partial_program(self, page: int, nslots: int, max_programs: int) -> bool:
        """Whether ``nslots`` more subpages fit into ``page`` in one more pass."""
        if not 0 <= page < self.next_page:
            return False
        if self.program_count[page] >= max_programs:
            return False
        return self.spp - self.page_programmed[page] >= nslots

    # -- mutation -------------------------------------------------------

    def program(self, page: int, slots: list[int], lsns: list[Lsn], now: Ms,
                max_programs: int) -> bool:
        """Program ``lsns`` into ``slots`` of ``page``; return True if the
        pass was a *partial* program of an already-programmed page.

        Raises on out-of-order initial programs, slot reuse, or exceeding
        the per-page program-pass limit.
        """
        n = len(slots)
        if n != len(lsns) or not n:
            raise SubpageStateError(
                f"block {self.block_id}: slots/lsns mismatch ({slots} vs {lsns})")
        if n > 1 and len(set(slots)) != n:
            raise SubpageStateError(f"block {self.block_id}: duplicate slots {slots}")
        if self.state not in (BlockState.OPEN, BlockState.FULL):
            raise SubpageStateError(
                f"block {self.block_id}: program while {self.state.value}")

        if page == self.next_page:
            partial = False
            self.next_page += 1
        elif 0 <= page < self.next_page:
            partial = True
            if not self.is_slc:
                raise SubpageStateError(
                    f"block {self.block_id}: partial programming requires SLC mode")
            if self.program_count[page] >= max_programs:
                raise PartialProgramLimitError(
                    f"block {self.block_id} page {page}: "
                    f"{self.program_count[page]} passes >= limit {max_programs}")
        else:
            raise ProgramOrderError(
                f"block {self.block_id}: page {page} programmed out of order "
                f"(next free page is {self.next_page})")

        row = self.programmed[page]
        for slot in slots:
            if not 0 <= slot < self.spp:
                raise SubpageStateError(f"slot {slot} out of range [0, {self.spp})")
            if row[slot]:
                raise SubpageStateError(
                    f"block {self.block_id} page {page} slot {slot}: already programmed")

        # Scalar per-slot stores: a pass writes 1-4 subpages, where numpy
        # fancy indexing costs far more than direct item assignment.
        valid_row = self.valid[page]
        lsn_row = self.slot_lsn[page]
        if self.is_slc:
            time_row = self.slot_time[page]
            ptime_row = self.slot_program_time[page]
            for i in range(n):
                slot = slots[i]
                row[slot] = True
                valid_row[slot] = True
                lsn_row[slot] = lsns[i]
                time_row[slot] = now
                ptime_row[slot] = now
        else:
            for i in range(n):
                slot = slots[i]
                row[slot] = True
                valid_row[slot] = True
                lsn_row[slot] = lsns[i]
        self.program_count[page] += 1
        self.n_programmed += n
        self.n_valid += n
        self.page_programmed[page] += n
        before = self.page_valid[page]
        self.page_valid[page] = before + n
        if before == 0:
            self.pages_with_valid += 1
        became_full = self.next_page >= self.pages and self.state is BlockState.OPEN
        if became_full:
            self.state = BlockState.FULL
        self.content_epoch += 1
        counters = self.counters
        if counters is not None:
            counters.note_program(n)
        index = self.index
        if index is not None:
            if became_full:
                index.note_enter(self)
            else:
                index.note_change(self.block_id)
        return partial

    def reprogram_pass(self, page: int, max_programs: int) -> int:
        """A partial-program pass that appends bytes inside slots that are
        already programmed (byte-granular partial programming, as in
        in-place delta compression).  No slot state changes, but the pass
        counts against the manufacturer limit and disturbs the page and
        its neighbours like any other pass.  Returns the number of valid
        in-page subpages disturbed."""
        if not self.is_slc:
            raise SubpageStateError(
                f"block {self.block_id}: partial programming requires SLC mode")
        if not 0 <= page < self.next_page:
            raise ProgramOrderError(
                f"block {self.block_id}: reprogram of unwritten page {page}")
        if self.program_count[page] >= max_programs:
            raise PartialProgramLimitError(
                f"block {self.block_id} page {page}: "
                f"{self.program_count[page]} passes >= limit {max_programs}")
        self.program_count[page] += 1
        self.content_epoch += 1
        index = self.index
        if index is not None:
            index.note_change(self.block_id)
        return self.add_disturb(page, [])

    def invalidate(self, page: int, slot: int) -> None:
        """Mark one live subpage obsolete."""
        row = self.valid[page]
        if not row[slot]:
            raise SubpageStateError(
                f"block {self.block_id} page {page} slot {slot}: not valid")
        row[slot] = False
        self.n_valid -= 1
        self.n_invalid += 1
        remaining = self.page_valid[page] - 1
        self.page_valid[page] = remaining
        if remaining == 0:
            self.pages_with_valid -= 1
        self.content_epoch += 1
        counters = self.counters
        if counters is not None:
            counters.note_invalidate()
        index = self.index
        if index is not None:
            index.note_change(self.block_id)

    def mark_page_updated(self, page: int) -> None:
        """Record that the data resident in ``page`` was updated while the
        page lived in this block (drives IPU's GC-time hot/cold split)."""
        if self.page_updated is not None:
            self.page_updated[page] = True
            self.content_epoch += 1
            index = self.index
            if index is not None:
                index.note_change(self.block_id)

    def touch(self, page: int, slots: list[int], now: Ms) -> None:
        """Refresh the last-access time of subpages (reads count as access
        for the coldness estimate of Equation 2)."""
        if self.slot_time is not None:
            row = self.slot_time[page]
            for slot in slots:
                row[slot] = now

    def add_disturb(self, page: int, written_slots: list[int]) -> int:
        """Apply program-disturb bookkeeping for one partial-program pass.

        In-page disturb hits every *valid* already-programmed subpage of the
        page other than the slots just written; neighbouring-page disturb
        hits programmed subpages of pages ``page - 1`` and ``page + 1``.
        Returns the number of *valid* in-page subpages disturbed (the
        quantity IPU eliminates).
        """
        if self.disturb_in is None:
            raise SubpageStateError("disturb tracking only exists for SLC-mode blocks")
        written = set(written_slots)
        hit_valid = 0
        spp = self.spp
        prow = self.programmed[page].tolist()
        vrow = self.valid[page].tolist()
        drow = self.disturb_in[page]
        for slot in range(spp):
            if slot in written or not prow[slot]:
                continue
            drow[slot] += 1
            if vrow[slot]:
                hit_valid += 1
        nb = self.disturb_nb
        page_programmed = self.page_programmed
        for npage in (page - 1, page + 1):
            if 0 <= npage < self.next_page:
                hit = page_programmed[npage]
                nrow = nb[npage]
                if hit == spp:
                    for slot in range(spp):
                        nrow[slot] += 1
                elif hit:
                    nprow = self.programmed[npage].tolist()
                    for slot in range(spp):
                        if nprow[slot]:
                            nrow[slot] += 1
        return hit_valid

    def erase(self) -> None:
        """Erase the block.  All data must have been moved out already."""
        if self.n_valid != 0:
            raise EraseError(
                f"block {self.block_id}: erase with {self.n_valid} valid subpages")
        if self.state is BlockState.FREE:
            raise EraseError(f"block {self.block_id}: erase of a free block")
        counters = self.counters
        if counters is not None:
            counters.note_erase(self)
        index = self.index
        if index is not None:
            index.note_leave(self.block_id)
        self.erase_count += 1
        self.next_page = 0
        self.state = BlockState.FREE
        self.level = None
        self.programmed[:] = False
        self.valid[:] = False
        self.program_count[:] = 0
        self.slot_lsn[:] = NO_LSN
        if self.is_slc:
            self.slot_time[:] = 0.0
            self.slot_program_time[:] = 0.0
            self.disturb_in = [[0] * self.spp for _ in range(self.pages)]
            self.disturb_nb = [[0] * self.spp for _ in range(self.pages)]
            self.page_updated[:] = False
        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        for page in range(self.pages):
            self.page_valid[page] = 0
            self.page_programmed[page] = 0
        self.pages_with_valid = 0
        self.content_epoch += 1
        self.read_count = 0

    def retire(self) -> None:
        """Permanently remove a grown-bad block from service.

        Retirement happens after the (possibly failed) erase pulse has run
        — :meth:`erase` already moved the block to FREE, reset its content
        and notified the watchers — so this transition only takes the
        block out of the free population.  A retired block never re-enters
        an allocator pool (capacity degradation is exactly this loss)."""
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: retire while {self.state.value} "
                f"(blocks retire from the just-erased FREE state)")
        self.state = BlockState.RETIRED
        counters = self.counters
        if counters is not None:
            counters.note_retire()

    def open_as(self, level: int, now: Ms) -> None:
        """Transition a free block to OPEN with a block-level label."""
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: open while {self.state.value}")
        self.state = BlockState.OPEN
        self.level = level
        self.alloc_time = now
        counters = self.counters
        if counters is not None:
            counters.note_open()

    def mark_victim(self) -> None:
        """Transition FULL → VICTIM (GC drain started).  Removes the block
        from the victim index so it cannot be selected twice."""
        index = self.index
        if index is not None:
            index.note_leave(self.block_id)
        self.state = BlockState.VICTIM

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Block({self.block_id}, {self.mode.value}, {self.state.value}, "
                f"level={self.level}, next_page={self.next_page}, "
                f"valid={self.n_valid}, invalid={self.n_invalid})")
