"""Per-block state: page/subpage occupancy, wear, disturb counters.

A block is the erase unit.  Pages inside a block must be programmed in
sequential order (``next_page`` pointer), as real NAND requires.  Each
16 KiB page holds four 4 KiB *subpage slots*; SLC-mode pages may be
programmed multiple times ("partial programming"), filling previously
unwritten slots, up to a manufacturer limit on program passes.

Subpage taxonomy used throughout:

* **valid** - programmed and holding live data,
* **invalid** - programmed, later invalidated by an update or move,
* **free** - never programmed since the last erase.  In a fully-programmed
  Baseline block free slots are wasted space (internal fragmentation); in an
  IPU block they are the landing zone for intra-page updates.

Since the structure-of-arrays refactor a block owns no arrays of its
own: all slot/page/block state lives in the flat per-region arrays of
:class:`~repro.nand.state.RegionState`, and the ``programmed`` /
``valid`` / ``slot_lsn`` / ... attributes here are numpy *views* into
that store (standalone construction, used by unit tests, just builds a
private single-block region).  Mutations go through flat item stores —
profiling shows scalar stores beat both fancy indexing and masked array
ops at ``spp`` = 4 granularity — and maintain, next to the arrays:

* python-int **per-page bitmasks** (``prog_mask``/``valid_mask``) that
  drive every hot membership/enumeration check without touching numpy,
* scalar occupancy counters (``n_valid``/``page_valid``/...) feeding the
  O(1) region stats and victim scores,
* the region's per-block ``state_code``/``level``/``erase_count``
  columns, mirrored at (rare) lifecycle transitions.

:meth:`Block.verify_array_state` cross-checks every derived quantity
against the authoritative arrays; ``FlashArray.verify_region_counters``
calls it from the ``--verify`` consistency hook.
"""

from __future__ import annotations

import enum

from ..errors import (
    EraseError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from .cell import CellMode
from .state import NO_LSN, RegionState
from ..units import Lsn, Ms, PeCycles

__all__ = ["NO_LSN", "Block", "BlockState", "BLOCK_STATE_CODES"]


class BlockState(enum.Enum):
    """Lifecycle of a block between erases."""

    FREE = "free"        #: erased, not yet allocated
    OPEN = "open"        #: allocated, accepting new pages
    FULL = "full"        #: every page programmed at least once
    VICTIM = "victim"    #: selected for GC, being drained
    RETIRED = "retired"  #: grown bad block, permanently out of service


#: Encoding of :class:`BlockState` in ``RegionState.state_code`` (FREE
#: must stay 0: freshly-zeroed regions start all-free).
BLOCK_STATE_CODES: dict[BlockState, int] = {
    BlockState.FREE: 0,
    BlockState.OPEN: 1,
    BlockState.FULL: 2,
    BlockState.VICTIM: 3,
    BlockState.RETIRED: 4,
}


class Block:
    """State of one physical block: a view over its region's arrays.

    Disturb and access-time arrays only exist for SLC-mode regions;
    native MLC blocks are always conventionally programmed exactly once
    per page, so their reliability is captured by the base RBER curve
    alone.
    """

    __slots__ = (
        "block_id", "mode", "is_slc", "pages", "spp", "erase_count", "next_page",
        "state", "level", "alloc_time",
        "region", "region_slot", "_base", "_page_base",
        "_slots_slice", "_pages_slice",
        "programmed", "valid", "program_count",
        "slot_lsn", "slot_time", "slot_program_time", "disturb_in",
        "disturb_nb", "page_updated",
        "prog_mask", "valid_mask", "_set_slots", "_popcount", "_full_mask",
        "n_valid", "n_invalid", "n_programmed", "content_epoch",
        "read_count", "page_valid", "page_programmed", "pass_counts",
        "pages_with_valid", "counters", "index",
    )

    def __init__(self, block_id: int, mode: CellMode, pages: int,
                 subpages_per_page: int, region: RegionState | None = None,
                 region_slot: int = 0):
        self.block_id = block_id
        self.mode = mode
        #: Cached ``mode.is_slc`` — the enum property is too hot to call
        #: per operation, and a block's mode never changes.
        self.is_slc = mode.is_slc
        self.pages = pages
        self.spp = subpages_per_page
        self.erase_count: PeCycles = 0
        self.next_page = 0
        self.state = BlockState.FREE
        #: Block-level label (see :mod:`repro.core.levels`); ``None`` when free.
        self.level: int | None = None
        self.alloc_time: Ms = 0.0

        if region is None:
            # Standalone construction (unit tests, scratch blocks): a
            # private single-block region backs this block alone.
            region = RegionState(1, pages, subpages_per_page, mode.is_slc)
            region_slot = 0
        elif (region.pages != pages or region.spp != subpages_per_page
              or region.slc != mode.is_slc):
            raise SubpageStateError(
                f"block {block_id}: region geometry mismatch "
                f"({region.pages}x{region.spp} slc={region.slc} vs "
                f"{pages}x{subpages_per_page} slc={mode.is_slc})")
        self.region = region
        self.region_slot = region_slot
        stride = region.block_stride
        base = region_slot * stride
        page_base = region_slot * pages
        #: Flat offsets of this block inside the region arrays.
        self._base = base
        self._page_base = page_base
        self._slots_slice = slice(base, base + stride)
        self._pages_slice = slice(page_base, page_base + pages)

        # Numpy views over this block's stripe of the region arrays
        # (shared memory: a write through the flat store is immediately
        # visible here and vice versa — there is no copy to go stale).
        self.programmed = region.programmed[self._slots_slice].reshape(
            pages, subpages_per_page)
        self.valid = region.valid[self._slots_slice].reshape(
            pages, subpages_per_page)
        self.slot_lsn = region.slot_lsn[self._slots_slice].reshape(
            pages, subpages_per_page)
        self.program_count = region.program_count[self._pages_slice]
        if mode.is_slc:
            self.slot_time = region.slot_time[self._slots_slice].reshape(
                pages, subpages_per_page)
            #: Program time, never refreshed by reads (retention ages from
            #: here; ``slot_time`` is the last *access* Equation 2 uses).
            self.slot_program_time = region.slot_program_time[
                self._slots_slice].reshape(pages, subpages_per_page)
            self.disturb_in = region.disturb_in[self._slots_slice].reshape(
                pages, subpages_per_page)
            self.disturb_nb = region.disturb_nb[self._slots_slice].reshape(
                pages, subpages_per_page)
            self.page_updated = region.page_updated[self._pages_slice]
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None

        #: Per-page python-int bitmasks of programmed/valid slots — the
        #: hot-path mirror of the bool arrays (maintained in lock-step by
        #: every mutation below; ``verify_array_state`` cross-checks).
        self.prog_mask = [0] * pages
        self.valid_mask = [0] * pages
        tables = region.tables
        self._set_slots = tables.set_slots
        self._popcount = tables.popcount
        self._full_mask = tables.full_mask

        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        #: Bumped on every content mutation; lets the stored-IS' cache of
        #: the ISR policy detect staleness cheaply.
        self.content_epoch = 0
        #: Reads served by this block since its last erase (read disturb).
        self.read_count = 0
        #: Per-page count of valid subpages and the number of pages with at
        #: least one valid subpage — maintained on program/invalidate/erase
        #: so whole-page victim scoring never rescans ``valid``.
        self.page_valid = [0] * pages
        #: Per-page count of programmed subpages — lets the disturb and
        #: partial-program checks skip re-summing ``programmed`` rows.
        self.page_programmed = [0] * pages
        #: Python-int mirror of ``region.program_count`` for this block —
        #: the pass-limit checks run per host chunk, where a list load
        #: beats a numpy scalar load several times over.
        self.pass_counts = [0] * pages
        self.pages_with_valid = 0
        #: Optional region-counter watcher (see
        #: :class:`repro.nand.flash.RegionCounters`); notified on
        #: program/invalidate/erase/open so region occupancy is O(1).
        self.counters = None
        #: Optional victim-score watcher (see
        #: :class:`repro.ftl.allocator.VictimIndex`); notified on content
        #: mutations and candidate-set transitions.
        self.index = None

    # -- pickling ------------------------------------------------------
    #
    # Default pickling of the numpy view attributes would materialise
    # them as independent *copies*, silently severing the shared-memory
    # contract with ``RegionState`` after a checkpoint restore (writes
    # through the flat store would no longer be visible through the
    # block, and vice versa).  Instead the views — and the shared mask
    # tables — are dropped from the pickled state and rebuilt from
    # ``(region, region_slot)`` on restore.  ``RegionState`` holds no
    # back-reference to its blocks, so by the time ``__setstate__``
    # runs the region object (and its arrays) is fully reconstructed.

    #: Numpy views into ``region`` — rebuilt, never pickled.
    _VIEW_ATTRS = (
        "programmed", "valid", "slot_lsn", "program_count",
        "slot_time", "slot_program_time", "disturb_in", "disturb_nb",
        "page_updated",
    )
    #: Shared ``SlotMaskTables`` lookups — rebound from ``region.tables``.
    _TABLE_ATTRS = ("_set_slots", "_popcount", "_full_mask")

    def _rebind_views(self) -> None:
        """Reconstruct the region-array views exactly as ``__init__``."""
        region = self.region
        pages, spp = self.pages, self.spp
        self.programmed = region.programmed[self._slots_slice].reshape(
            pages, spp)
        self.valid = region.valid[self._slots_slice].reshape(pages, spp)
        self.slot_lsn = region.slot_lsn[self._slots_slice].reshape(
            pages, spp)
        self.program_count = region.program_count[self._pages_slice]
        if self.is_slc:
            self.slot_time = region.slot_time[self._slots_slice].reshape(
                pages, spp)
            self.slot_program_time = region.slot_program_time[
                self._slots_slice].reshape(pages, spp)
            self.disturb_in = region.disturb_in[self._slots_slice].reshape(
                pages, spp)
            self.disturb_nb = region.disturb_nb[self._slots_slice].reshape(
                pages, spp)
            self.page_updated = region.page_updated[self._pages_slice]
        else:
            self.slot_time = None
            self.slot_program_time = None
            self.disturb_in = None
            self.disturb_nb = None
            self.page_updated = None
        tables = region.tables
        self._set_slots = tables.set_slots
        self._popcount = tables.popcount
        self._full_mask = tables.full_mask

    def __getstate__(self) -> dict:
        skip = set(self._VIEW_ATTRS) | set(self._TABLE_ATTRS)
        return {name: getattr(self, name) for name in self.__slots__
                if name not in skip}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._rebind_views()

    # -- capacity queries ----------------------------------------------

    @property
    def total_subpages(self) -> int:
        """``TS_i`` of Equation 1."""
        return self.pages * self.spp

    @property
    def is_full(self) -> bool:
        """True once every page received its initial program pass."""
        return self.next_page >= self.pages

    @property
    def reclaimable_subpages(self) -> int:
        """Subpages freed by collecting this block (everything non-valid)."""
        return self.total_subpages - self.n_valid

    def free_slots_of_page(self, page: int) -> list[int]:
        """Unprogrammed slot indices of ``page`` (ascending), read off the
        programmed bitmask (one table lookup, no array scan)."""
        return list(self._set_slots[self._full_mask ^ self.prog_mask[page]])

    def valid_slots_of_page(self, page: int) -> list[int]:
        """Slot indices of ``page`` currently holding live data."""
        return list(self._set_slots[self.valid_mask[page]])

    def slot_lsns(self, page: int, slots: list[int]) -> list[int]:
        """The LSNs bound to ``slots`` of ``page`` as python ints (flat
        item loads; the relocation paths consume these)."""
        lsn_f = self.region.slot_lsn
        jbase = self._base + page * self.spp
        return [int(lsn_f[jbase + s]) for s in slots]

    def can_partial_program(self, page: int, nslots: int, max_programs: int) -> bool:
        """Whether ``nslots`` more subpages fit into ``page`` in one more pass."""
        if not 0 <= page < self.next_page:
            return False
        if self.pass_counts[page] >= max_programs:
            return False
        return self.spp - self.page_programmed[page] >= nslots

    # -- mutation -------------------------------------------------------

    def program(self, page: int, slots: list[int], lsns: list[Lsn], now: Ms,
                max_programs: int) -> bool:
        """Program ``lsns`` into ``slots`` of ``page``; return True if the
        pass was a *partial* program of an already-programmed page.

        Raises on out-of-order initial programs, slot reuse, or exceeding
        the per-page program-pass limit.
        """
        partial, _ = self.program_disturb(
            page, slots, lsns, now, max_programs, apply_disturb=False)
        return partial

    def program_disturb(self, page: int, slots: list[int], lsns: list[Lsn],
                        now: Ms, max_programs: int,
                        apply_disturb: bool = True) -> "tuple[bool, int]":
        """Fused program + disturb pass: one call per flash program.

        Returns ``(partial, disturbed_valid)``.  When ``apply_disturb``
        and the pass is partial, in-page/neighbour disturb bookkeeping is
        applied in the same call (the write mask is already at hand), and
        ``disturbed_valid`` counts the valid in-page subpages hit —
        exactly what separate ``program`` + ``add_disturb`` calls did.
        """
        n = len(slots)
        if n != len(lsns) or not n:
            raise SubpageStateError(
                f"block {self.block_id}: slots/lsns mismatch ({slots} vs {lsns})")
        if self.state not in (BlockState.OPEN, BlockState.FULL):
            raise SubpageStateError(
                f"block {self.block_id}: program while {self.state.value}")

        if page == self.next_page:
            partial = False
        elif 0 <= page < self.next_page:
            partial = True
            if not self.is_slc:
                raise SubpageStateError(
                    f"block {self.block_id}: partial programming requires SLC mode")
            if self.pass_counts[page] >= max_programs:
                raise PartialProgramLimitError(
                    f"block {self.block_id} page {page}: "
                    f"{self.pass_counts[page]} passes >= limit {max_programs}")
        else:
            raise ProgramOrderError(
                f"block {self.block_id}: page {page} programmed out of order "
                f"(next free page is {self.next_page})")

        spp = self.spp
        pmask = self.prog_mask[page]
        wmask = 0
        try:
            for slot in slots:
                wmask |= 1 << slot
        except ValueError:  # negative shift count
            raise SubpageStateError(
                f"slot {min(slots)} out of range [0, {spp})") from None
        # One fused check replaces per-slot branching: a duplicate slot
        # drops the popcount, an out-of-range slot overflows the page
        # mask, and an already-programmed slot intersects pmask.
        if wmask.bit_count() != n or wmask >> spp or pmask & wmask:
            for slot in slots:
                if not 0 <= slot < spp:
                    raise SubpageStateError(
                        f"slot {slot} out of range [0, {spp})")
                if pmask >> slot & 1:
                    raise SubpageStateError(
                        f"block {self.block_id} page {page} slot {slot}: "
                        f"already programmed")
            raise SubpageStateError(
                f"block {self.block_id}: duplicate slots {slots}")
        if not partial:
            # Deferred past the mask validation so a rejected program
            # leaves the block untouched.
            self.next_page += 1

        # Scalar per-slot stores on the flat region arrays: a pass writes
        # 1-4 subpages, where numpy fancy indexing costs far more than
        # direct item assignment.
        region = self.region
        jbase = self._base + page * spp
        programmed_f = region.programmed
        valid_f = region.valid
        lsn_f = region.slot_lsn
        if self.is_slc:
            time_f = region.slot_time
            ptime_f = region.slot_program_time
            for i in range(n):
                j = jbase + slots[i]
                programmed_f[j] = True
                valid_f[j] = True
                lsn_f[j] = lsns[i]
                time_f[j] = now
                ptime_f[j] = now
        else:
            for i in range(n):
                j = jbase + slots[i]
                programmed_f[j] = True
                valid_f[j] = True
                lsn_f[j] = lsns[i]
        self.prog_mask[page] = pmask | wmask
        self.valid_mask[page] |= wmask
        n_passes = self.pass_counts[page] + 1
        self.pass_counts[page] = n_passes
        region.program_count[self._page_base + page] = n_passes
        self.n_programmed += n
        self.n_valid += n
        self.page_programmed[page] += n
        before = self.page_valid[page]
        self.page_valid[page] = before + n
        if before == 0:
            self.pages_with_valid += 1
        became_full = self.next_page >= self.pages and self.state is BlockState.OPEN
        if became_full:
            self.state = BlockState.FULL
            region.state_code[self.region_slot] = 2  # BLOCK_STATE_CODES[FULL]
        self.content_epoch += 1
        # Watcher updates inlined (RegionCounters.note_program and
        # VictimIndex.note_change/note_enter): one flash program per host
        # chunk lands here, and the two method frames are measurable.
        counters = self.counters
        if counters is not None:
            counters.programmed_subpages += n
            counters.valid_subpages += n
        index = self.index
        if index is not None:
            if became_full:
                index.members[self.block_id] = self
                index.version += 1
            elif self.block_id in index.members:
                index.dirty.add(self.block_id)
        disturbed = 0
        if partial and apply_disturb:
            disturbed = self._apply_disturb(page, wmask)
        return partial, disturbed

    def reprogram_pass(self, page: int, max_programs: int) -> int:
        """A partial-program pass that appends bytes inside slots that are
        already programmed (byte-granular partial programming, as in
        in-place delta compression).  No slot state changes, but the pass
        counts against the manufacturer limit and disturbs the page and
        its neighbours like any other pass.  Returns the number of valid
        in-page subpages disturbed."""
        if not self.is_slc:
            raise SubpageStateError(
                f"block {self.block_id}: partial programming requires SLC mode")
        if not 0 <= page < self.next_page:
            raise ProgramOrderError(
                f"block {self.block_id}: reprogram of unwritten page {page}")
        if self.pass_counts[page] >= max_programs:
            raise PartialProgramLimitError(
                f"block {self.block_id} page {page}: "
                f"{self.pass_counts[page]} passes >= limit {max_programs}")
        n_passes = self.pass_counts[page] + 1
        self.pass_counts[page] = n_passes
        self.region.program_count[self._page_base + page] = n_passes
        self.content_epoch += 1
        index = self.index
        if index is not None:
            index.note_change(self.block_id)
        return self._apply_disturb(page, 0)

    def invalidate(self, page: int, slot: int) -> None:
        """Mark one live subpage obsolete."""
        bit = 1 << slot
        vmask = self.valid_mask[page]
        if not vmask & bit:
            raise SubpageStateError(
                f"block {self.block_id} page {page} slot {slot}: not valid")
        self.valid_mask[page] = vmask & ~bit
        self.region.valid[self._base + page * self.spp + slot] = False
        self.n_valid -= 1
        self.n_invalid += 1
        remaining = self.page_valid[page] - 1
        self.page_valid[page] = remaining
        if remaining == 0:
            self.pages_with_valid -= 1
        self.content_epoch += 1
        # Watcher updates inlined, as in program_disturb.
        counters = self.counters
        if counters is not None:
            counters.valid_subpages -= 1
            counters.invalid_subpages += 1
        index = self.index
        if index is not None and self.block_id in index.members:
            index.dirty.add(self.block_id)

    def invalidate_many(self, page: int, slots: list[int]) -> None:
        """Invalidate several live subpages of one page in one pass.

        Equivalent to ``invalidate(page, s)`` per slot (same counter and
        epoch arithmetic, one watcher notification instead of ``len``).
        """
        k = len(slots)
        if k == 1:
            self.invalidate(page, slots[0])
            return
        if k == 0:
            # Nothing to invalidate; falling through would treat the page
            # as having just lost its last valid slot.
            return
        mask = 0
        vmask = self.valid_mask[page]
        for slot in slots:
            bit = 1 << slot
            if not vmask & bit or mask & bit:
                raise SubpageStateError(
                    f"block {self.block_id} page {page} slot {slot}: not valid")
            mask |= bit
        self.valid_mask[page] = vmask & ~mask
        valid_f = self.region.valid
        jbase = self._base + page * self.spp
        for slot in slots:
            valid_f[jbase + slot] = False
        self.n_valid -= k
        self.n_invalid += k
        remaining = self.page_valid[page] - k
        self.page_valid[page] = remaining
        if remaining == 0:
            self.pages_with_valid -= 1
        self.content_epoch += k
        counters = self.counters
        if counters is not None:
            counters.valid_subpages -= k
            counters.invalid_subpages += k
        index = self.index
        if index is not None and self.block_id in index.members:
            index.dirty.add(self.block_id)

    def mark_page_updated(self, page: int) -> None:
        """Record that the data resident in ``page`` was updated while the
        page lived in this block (drives IPU's GC-time hot/cold split)."""
        region = self.region
        if region.page_updated is not None:
            region.page_updated[self._page_base + page] = True
            self.content_epoch += 1
            index = self.index
            if index is not None:
                index.note_change(self.block_id)

    def touch(self, page: int, slots: list[int], now: Ms) -> None:
        """Refresh the last-access time of subpages (reads count as access
        for the coldness estimate of Equation 2)."""
        time_f = self.region.slot_time
        if time_f is not None:
            jbase = self._base + page * self.spp
            for slot in slots:
                time_f[jbase + slot] = now

    def add_disturb(self, page: int, written_slots: list[int]) -> int:
        """Apply program-disturb bookkeeping for one partial-program pass.

        In-page disturb hits every *valid* already-programmed subpage of the
        page other than the slots just written; neighbouring-page disturb
        hits programmed subpages of pages ``page - 1`` and ``page + 1``.
        Returns the number of *valid* in-page subpages disturbed (the
        quantity IPU eliminates).
        """
        if self.region.disturb_in is None:
            raise SubpageStateError("disturb tracking only exists for SLC-mode blocks")
        written = 0
        for slot in written_slots:
            written |= 1 << slot
        return self._apply_disturb(page, written)

    def _apply_disturb(self, page: int, written_mask: int) -> int:
        """Disturb pass over the bitmasks: scalar int64 increments on the
        flat counters, targets enumerated straight from the masks."""
        region = self.region
        set_slots = self._set_slots
        spp = self.spp
        hits = self.prog_mask[page] & ~written_mask
        hit_valid = self._popcount[hits & self.valid_mask[page]]
        if hits:
            disturb_f = region.disturb_in
            jbase = self._base + page * spp
            for slot in set_slots[hits]:
                disturb_f[jbase + slot] += 1
        disturb_f = region.disturb_nb
        next_page = self.next_page
        prog_mask = self.prog_mask
        for npage in (page - 1, page + 1):
            if 0 <= npage < next_page:
                nmask = prog_mask[npage]
                if nmask:
                    jbase = self._base + npage * spp
                    for slot in set_slots[nmask]:
                        disturb_f[jbase + slot] += 1
        return hit_valid

    def erase(self) -> None:
        """Erase the block.  All data must have been moved out already."""
        if self.n_valid != 0:
            raise EraseError(
                f"block {self.block_id}: erase with {self.n_valid} valid subpages")
        if self.state is BlockState.FREE:
            raise EraseError(f"block {self.block_id}: erase of a free block")
        counters = self.counters
        if counters is not None:
            counters.note_erase(self)
        index = self.index
        if index is not None:
            index.note_leave(self.block_id)
        self.erase_count += 1
        self.next_page = 0
        self.state = BlockState.FREE
        self.level = None
        region = self.region
        slot = self.region_slot
        region.erase_count[slot] = self.erase_count
        region.state_code[slot] = 0  # BLOCK_STATE_CODES[FREE]
        region.level[slot] = -1
        slots_slice = self._slots_slice
        pages_slice = self._pages_slice
        region.programmed[slots_slice] = False
        region.valid[slots_slice] = False
        region.program_count[pages_slice] = 0
        region.slot_lsn[slots_slice] = NO_LSN
        if self.is_slc:
            region.slot_time[slots_slice] = 0.0
            region.slot_program_time[slots_slice] = 0.0
            region.disturb_in[slots_slice] = 0
            region.disturb_nb[slots_slice] = 0
            region.page_updated[pages_slice] = False
        zeros = [0] * self.pages
        self.prog_mask[:] = zeros
        self.valid_mask[:] = zeros
        self.page_valid[:] = zeros
        self.page_programmed[:] = zeros
        self.pass_counts[:] = zeros
        self.n_valid = 0
        self.n_invalid = 0
        self.n_programmed = 0
        self.pages_with_valid = 0
        self.content_epoch += 1
        self.read_count = 0

    def retire(self) -> None:
        """Permanently remove a grown-bad block from service.

        Retirement happens after the (possibly failed) erase pulse has run
        — :meth:`erase` already moved the block to FREE, reset its content
        and notified the watchers — so this transition only takes the
        block out of the free population.  A retired block never re-enters
        an allocator pool (capacity degradation is exactly this loss)."""
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: retire while {self.state.value} "
                f"(blocks retire from the just-erased FREE state)")
        self.state = BlockState.RETIRED
        self.region.state_code[self.region_slot] = 4  # BLOCK_STATE_CODES[RETIRED]
        counters = self.counters
        if counters is not None:
            counters.note_retire()

    def open_as(self, level: int, now: Ms) -> None:
        """Transition a free block to OPEN with a block-level label."""
        if self.state is not BlockState.FREE:
            raise SubpageStateError(
                f"block {self.block_id}: open while {self.state.value}")
        self.state = BlockState.OPEN
        self.level = level
        self.alloc_time = now
        region = self.region
        region.state_code[self.region_slot] = 1  # BLOCK_STATE_CODES[OPEN]
        region.level[self.region_slot] = level
        counters = self.counters
        if counters is not None:
            counters.note_open()

    def mark_victim(self) -> None:
        """Transition FULL → VICTIM (GC drain started).  Removes the block
        from the victim index so it cannot be selected twice."""
        index = self.index
        if index is not None:
            index.note_leave(self.block_id)
        self.state = BlockState.VICTIM
        self.region.state_code[self.region_slot] = 3  # BLOCK_STATE_CODES[VICTIM]

    # -- integrity ------------------------------------------------------

    def verify_array_state(self) -> None:
        """Assert every derived scalar/bitmask mirror agrees with the
        authoritative region arrays (consistency-hook support)."""
        pv = self.valid.sum(axis=1).tolist()
        pp = self.programmed.sum(axis=1).tolist()
        if self.page_valid != pv:
            raise SubpageStateError(
                f"block {self.block_id}: page_valid counters drifted")
        if self.page_programmed != pp:
            raise SubpageStateError(
                f"block {self.block_id}: page_programmed counters drifted")
        if self.pass_counts != self.program_count.tolist():
            raise SubpageStateError(
                f"block {self.block_id}: pass_counts mirror drifted from "
                f"the program_count array")
        for page in range(self.pages):
            prow = int(sum(1 << s for s in range(self.spp)
                           if self.programmed[page, s]))
            vrow = int(sum(1 << s for s in range(self.spp)
                           if self.valid[page, s]))
            if self.prog_mask[page] != prow or self.valid_mask[page] != vrow:
                raise SubpageStateError(
                    f"block {self.block_id} page {page}: slot bitmasks "
                    f"drifted from the programmed/valid arrays")
        n_valid = int(self.valid.sum())
        n_programmed = int(self.programmed.sum())
        if (self.n_valid != n_valid or self.n_programmed != n_programmed
                or self.n_invalid != n_programmed - n_valid):
            raise SubpageStateError(
                f"block {self.block_id}: occupancy counters drifted")
        if self.pages_with_valid != sum(1 for v in pv if v):
            raise SubpageStateError(
                f"block {self.block_id}: pages_with_valid drifted")
        region = self.region
        slot = self.region_slot
        if int(region.erase_count[slot]) != self.erase_count:
            raise SubpageStateError(
                f"block {self.block_id}: erase_count mirror drifted")
        if int(region.state_code[slot]) != BLOCK_STATE_CODES[self.state]:
            raise SubpageStateError(
                f"block {self.block_id}: state_code mirror drifted "
                f"({int(region.state_code[slot])} vs {self.state.value})")
        expected_level = -1 if self.level is None else int(self.level)
        if int(region.level[slot]) != expected_level:
            raise SubpageStateError(
                f"block {self.block_id}: level mirror drifted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Counts come straight off the region arrays (ground truth), so a
        # drifted derived counter is visible when debugging.
        n_valid = int(self.valid.sum())
        n_invalid = int(self.programmed.sum()) - n_valid
        return (f"Block({self.block_id}, {self.mode.value}, {self.state.value}, "
                f"level={self.level}, next_page={self.next_page}, "
                f"valid={n_valid}, invalid={n_invalid})")
