"""Hot-path throughput harness (``repro-ssd bench``).

Measures host-side simulation speed — requests replayed per wall second —
for a grid of (trace, scheme) cells at one scale, optionally under
cProfile.  The numbers quantify the *simulator*, not the modelled device:
every modelled quantity (latencies, error counts, the Figure 12 scan
cost) is deterministic and unaffected by how fast Python happens to run.

The committed ``BENCH_hotpath.json`` at the repository root records the
reference throughput so each PR leaves a perf trajectory; ``--check``
compares a fresh run against it and fails on a relative regression
beyond ``--max-regression`` (CI runs this at smoke scale).  Cells are
compared by ops/sec ratio, so the check is only meaningful on hardware
comparable to the machine that wrote the baseline; regenerate with
``--update`` after intentional perf changes or on a new reference host.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from pathlib import Path

#: Default measurement grid: one bursty trace (ts0) and one light one
#: (lun2) exercise the GC-heavy and the allocation-heavy paths.
DEFAULT_TRACES = ("ts0", "lun2")
DEFAULT_SCHEMES = ("baseline", "mga", "ipu")

#: Schemes additionally measured through the device front-end (write
#: buffer + multi-queue scheduler), as ``<scheme>+frontend`` cells, so
#: the front-end replay path sits under the same regression ratchet as
#: the direct path.
FRONTEND_SCHEMES = ("ipu",)

#: Cell-name suffix marking a front-end-enabled measurement.
FRONTEND_SUFFIX = "+frontend"

#: Committed reference file at the repository root.
BENCH_BASELINE = "BENCH_hotpath.json"


def _run_cell(trace_name: str, scheme: str, scale: str, seed: int,
              repeats: int) -> dict:
    """Best-of-``repeats`` wall time for one freshly-built cell.

    A scheme name ending in :data:`FRONTEND_SUFFIX` is replayed through
    :class:`~repro.frontend.simulate.FrontendSimulator` (write buffer +
    multi-queue scheduler enabled) instead of the direct path.
    """
    from . import SCHEMES
    from .experiments.runner import RunContext
    from .sim.simulator import Simulator

    frontend = scheme.endswith(FRONTEND_SUFFIX)
    base_scheme = scheme[:-len(FRONTEND_SUFFIX)] if frontend else scheme
    ctx = RunContext(scale, seed)
    config = ctx.trace_config(trace_name)
    trace = ctx.trace(trace_name)
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        ftl = SCHEMES[base_scheme](config)
        if frontend:
            from .frontend.config import FrontendConfig
            from .frontend.simulate import FrontendSimulator
            sim = FrontendSimulator(ftl, FrontendConfig(enabled=True))
        else:
            sim = Simulator(ftl)
        t0 = time.perf_counter()
        result = sim.run(trace)
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return {
        "trace": trace_name,
        "scheme": scheme,
        "n_requests": result.n_requests,
        "wall_seconds": round(best, 6),
        "ops_per_sec": round(result.n_requests / best, 1),
    }


def environment_info() -> dict:
    """Interpreter/library/platform identity for cross-run comparability.

    Stored in the bench payload so a committed baseline records *where*
    its numbers were measured; the regression check stays ratio-based,
    but a mismatching environment explains a surprising ratio.
    """
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_bench(scale: str = "smoke", seed: int = 1,
              traces: "tuple[str, ...]" = DEFAULT_TRACES,
              schemes: "tuple[str, ...]" = DEFAULT_SCHEMES,
              repeats: int = 3,
              frontend_schemes: "tuple[str, ...]" = FRONTEND_SCHEMES) -> dict:
    """Measure the full grid; returns the payload ``--json`` would write.

    ``frontend_schemes`` adds one ``<scheme>+frontend`` cell per trace,
    replayed through the device front-end; pass an empty tuple to
    measure the direct path only.  The aggregate covers direct cells
    only, so its trajectory stays comparable across baselines that
    added front-end cells later.
    """
    all_schemes = list(schemes) + [
        s + FRONTEND_SUFFIX for s in frontend_schemes if s in schemes]
    cells = [_run_cell(t, s, scale, seed, repeats)
             for t in traces for s in all_schemes]
    direct = [c for c in cells if not c["scheme"].endswith(FRONTEND_SUFFIX)]
    total_requests = sum(c["n_requests"] for c in direct)
    total_seconds = sum(c["wall_seconds"] for c in direct)
    return {
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "environment": environment_info(),
        "cells": cells,
        "aggregate": {
            "n_requests": total_requests,
            "wall_seconds": round(total_seconds, 6),
            "ops_per_sec": round(total_requests / total_seconds, 1),
        },
    }


def profile_cell(trace_name: str, scheme: str, scale: str, seed: int,
                 top: int = 25) -> str:
    """One cell under cProfile; returns the top-``top`` tottime table."""
    from . import SCHEMES
    from .experiments.runner import RunContext
    from .sim.simulator import Simulator

    frontend = scheme.endswith(FRONTEND_SUFFIX)
    base_scheme = scheme[:-len(FRONTEND_SUFFIX)] if frontend else scheme
    ctx = RunContext(scale, seed)
    ftl = SCHEMES[base_scheme](ctx.trace_config(trace_name))
    if frontend:
        from .frontend.config import FrontendConfig
        from .frontend.simulate import FrontendSimulator
        sim = FrontendSimulator(ftl, FrontendConfig(enabled=True))
    else:
        sim = Simulator(ftl)
    trace = ctx.trace(trace_name)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(trace)
    profiler.disable()
    out = io.StringIO()
    pstats.Stats(profiler, stream=out).sort_stats("tottime").print_stats(top)
    return out.getvalue()


def compare_to_baseline(current: dict, baseline: dict,
                        max_regression: float = 0.30) -> "list[str]":
    """Regression report: one line per cell slower than allowed.

    A cell regresses when its ops/sec falls below
    ``(1 - max_regression)`` of the baseline cell; the aggregate is held
    to the same floor (a broad small slowdown can regress the aggregate
    without any single cell tripping); cells present on only one side
    are reported too (a silently dropped cell would otherwise hide a
    regression).  Empty list == pass.
    """
    failures: list[str] = []
    floor = 1.0 - max_regression
    base_agg = baseline.get("aggregate", {}).get("ops_per_sec")
    cur_agg = current.get("aggregate", {}).get("ops_per_sec")
    if base_agg and cur_agg:
        ratio = cur_agg / base_agg
        if ratio < floor:
            failures.append(
                f"aggregate: {cur_agg:.0f} ops/s vs baseline "
                f"{base_agg:.0f} (x{ratio:.2f} < x{floor:.2f})")
    base_cells = {(c["trace"], c["scheme"]): c for c in baseline.get("cells", [])}
    cur_cells = {(c["trace"], c["scheme"]): c for c in current.get("cells", [])}
    for key, base in sorted(base_cells.items()):
        cur = cur_cells.get(key)
        if cur is None:
            failures.append(f"{key[0]}/{key[1]}: missing from current run")
            continue
        ratio = cur["ops_per_sec"] / base["ops_per_sec"]
        if ratio < floor:
            failures.append(
                f"{key[0]}/{key[1]}: {cur['ops_per_sec']:.0f} ops/s vs "
                f"baseline {base['ops_per_sec']:.0f} "
                f"(x{ratio:.2f} < x{floor:.2f})")
    for key in sorted(set(cur_cells) - set(base_cells)):
        failures.append(f"{key[0]}/{key[1]}: not in baseline "
                        f"(regenerate with --update)")
    return failures


def load_baseline(path: "Path | str" = BENCH_BASELINE) -> dict:
    """Read a committed baseline payload."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


def save_baseline(payload: dict, path: "Path | str" = BENCH_BASELINE) -> None:
    """Write the baseline payload (committed to the repository)."""
    with Path(path).open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
