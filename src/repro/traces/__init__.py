"""Block I/O trace substrate.

The paper evaluates on six traces (MSR-Cambridge ``ts0``, ``wdev0``,
``usr0``; Microsoft production ``ads``; VDI ``lun1``, ``lun2``).  Those
files are not redistributable, so this package provides:

* :mod:`repro.traces.profiles` — per-trace statistical profiles lifted
  from Tables 1 and 3 of the paper,
* :mod:`repro.traces.synth` — a constructive generator that reproduces the
  profiled marginals (request count, write ratio, write sizes, update-size
  buckets, hot-address ratio),
* :mod:`repro.traces.msr` — a parser for the real MSR-Cambridge CSV format
  for users who have the original files,
* :mod:`repro.traces.stream` — the chunked :class:`TraceStream` protocol
  behind constant-memory replay of arbitrarily long traces,
* :mod:`repro.traces.stats` — characterisation used to regenerate
  Tables 1 and 3 from any trace.
"""

from .model import Trace, TraceRequest, OpType
from .profiles import TraceProfile, PROFILES, profile
from .stream import InMemoryStream, MergedStream, TraceStream, materialize
from .synth import SyntheticStream, SyntheticTraceGenerator, generate
from .msr import MsrStream, parse_msr_csv
from .stats import TraceStats, characterize, update_size_buckets

__all__ = [
    "Trace",
    "TraceRequest",
    "OpType",
    "TraceProfile",
    "PROFILES",
    "profile",
    "InMemoryStream",
    "MergedStream",
    "MsrStream",
    "SyntheticStream",
    "SyntheticTraceGenerator",
    "TraceStream",
    "generate",
    "materialize",
    "parse_msr_csv",
    "TraceStats",
    "characterize",
    "update_size_buckets",
]
