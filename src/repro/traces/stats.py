"""Trace characterisation: regenerates Tables 1 and 3 from any trace.

Definitions follow the paper:

* an **updated request** is a write whose start address was written
  before (Table 1 buckets its sizes into <=4K, 4-8K, >8K),
* a **hot address** is a distinct request start address touched at least
  4 times by any request (Table 3's "Hot write" column).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..units import KIB, Bytes
from .model import Trace

#: Table 1 bucket upper bounds in bytes (last bucket is open-ended).
BUCKET_BOUNDS = (4 * KIB, 8 * KIB)
#: Accesses needed for an address to count as hot (Section 4.1).
HOT_THRESHOLD = 4


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of one trace (one row of Tables 1 and 3)."""

    name: str
    n_requests: int
    write_ratio: float
    mean_write_bytes: float
    hot_write_ratio: float
    n_updates: int
    update_size_probs: tuple[float, float, float]

    def table1_row(self) -> dict[str, str]:
        """Formatted Table 1 row."""
        p = self.update_size_probs
        return {
            "Trace": self.name,
            "Size<=4K": f"{p[0]:.1%}",
            "Size 4-8K": f"{p[1]:.1%}",
            "Size>8K": f"{p[2]:.1%}",
        }

    def table3_row(self) -> dict[str, str]:
        """Formatted Table 3 row."""
        return {
            "Trace": self.name,
            "# of Req.": f"{self.n_requests:,}",
            "Write R": f"{self.write_ratio:.1%}",
            "Write SZ": f"{self.mean_write_bytes / KIB:.1f}KB",
            "Hot write": f"{self.hot_write_ratio:.1%}",
        }


def update_size_buckets(sizes_bytes: "list[Bytes]") -> tuple[float, float, float]:
    """Fraction of update sizes in each Table 1 bucket."""
    if not sizes_bytes:
        return (0.0, 0.0, 0.0)
    lo = sum(1 for s in sizes_bytes if s <= BUCKET_BOUNDS[0])
    mid = sum(1 for s in sizes_bytes if BUCKET_BOUNDS[0] < s <= BUCKET_BOUNDS[1])
    hi = len(sizes_bytes) - lo - mid
    n = len(sizes_bytes)
    return (lo / n, mid / n, hi / n)


def characterize(trace: Trace) -> TraceStats:
    """Compute Table 1 and Table 3 statistics for ``trace``."""
    access_counts: Counter[int] = Counter()
    written: set[int] = set()
    update_sizes: list[int] = []
    write_bytes = 0
    n_writes = 0

    for req in trace:
        access_counts[req.offset] += 1
        if req.is_write:
            n_writes += 1
            write_bytes += req.size
            if req.offset in written:
                update_sizes.append(req.size)
            else:
                written.add(req.offset)

    n = len(trace)
    hot = sum(1 for c in access_counts.values() if c >= HOT_THRESHOLD)
    distinct = len(access_counts)
    return TraceStats(
        name=trace.name,
        n_requests=n,
        write_ratio=n_writes / n if n else 0.0,
        mean_write_bytes=write_bytes / n_writes if n_writes else 0.0,
        hot_write_ratio=hot / distinct if distinct else 0.0,
        n_updates=len(update_sizes),
        update_size_probs=update_size_buckets(update_sizes),
    )
