"""Streaming trace replay: iterate a trace as bounded-size chunks.

A :class:`TraceStream` is the constant-memory counterpart of a fully
materialised :class:`~repro.traces.model.Trace`: instead of holding every
request in memory at once it yields the trace as a sequence of *chunks*
(each chunk itself a small ``Trace`` carrying absolute timestamps), so a
replay of an arbitrarily long trace only ever holds one chunk of request
columns plus the simulator state.

Contracts every stream must honour (the replay drivers and the
checkpoint fast-forward logic in :mod:`repro.fleet` rely on them):

* **Determinism** — ``chunks()`` is re-iterable: every fresh iteration
  yields the same chunk sequence, byte for byte.  Checkpoint restore
  fast-forwards a stream by regenerating it and discarding the chunks a
  snapshot already consumed, so a stream that cannot replay itself
  cannot be resumed.
* **Global time order** — concatenating the chunks in order yields one
  valid trace: times are non-decreasing *across* chunk boundaries, and
  chunk timestamps are absolute (never chunk-relative).
* **Bounded chunks** — each chunk holds at most the stream's configured
  ``chunk_requests`` rows (the last may be shorter; empty chunks are
  allowed so aligned multi-stream iteration can keep lockstep).

:func:`materialize` folds a stream back into one in-memory ``Trace`` —
the bridge for callers that still want the old interface — and
:class:`MergedStream` interleaves several tenant streams into one
arrival process by timestamp, the multi-tenant mixing primitive of
:mod:`repro.fleet`.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import TraceError
from .model import Trace

__all__ = [
    "DEFAULT_CHUNK_REQUESTS", "TraceStream", "InMemoryStream",
    "MergedStream", "materialize",
]

#: Default rows per chunk: large enough that per-chunk python overhead
#: (list conversions, loop setup) is negligible next to per-request
#: simulation work, small enough that a chunk's columns stay a few MiB.
DEFAULT_CHUNK_REQUESTS = 65_536


def _check_chunk_requests(chunk_requests: int) -> int:
    if chunk_requests < 1:
        raise TraceError(
            f"chunk_requests must be >= 1, got {chunk_requests}")
    return int(chunk_requests)


@runtime_checkable
class TraceStream(Protocol):
    """Iterable-of-chunks view of one trace (see module contracts)."""

    name: str

    def chunks(self) -> Iterator[Trace]:
        """Yield the trace as consecutive bounded-size ``Trace`` chunks."""
        ...  # pragma: no cover - protocol


class InMemoryStream:
    """Adapt a materialised :class:`Trace` to the stream interface.

    Used by the replay drivers to funnel plain ``Trace`` arguments
    through the exact same chunked code path as true streams, and by
    tests to force arbitrary chunk boundaries over a known trace.
    """

    def __init__(self, trace: Trace, chunk_requests: int = DEFAULT_CHUNK_REQUESTS):
        self.trace = trace
        self.chunk_requests = _check_chunk_requests(chunk_requests)
        self.name = trace.name

    def chunks(self) -> Iterator[Trace]:
        trace = self.trace
        step = self.chunk_requests
        n = len(trace)
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            yield Trace(trace.times_ms[lo:hi], trace.is_write[lo:hi],
                        trace.offsets[lo:hi], trace.sizes[lo:hi],
                        name=trace.name)
        if n == 0:
            yield trace


def materialize(stream: "TraceStream | Trace") -> Trace:
    """Concatenate a stream's chunks into one in-memory :class:`Trace`."""
    if isinstance(stream, Trace):
        return stream
    parts = [c for c in stream.chunks() if len(c)]
    if not parts:
        empty = np.zeros(0)
        return Trace(empty, empty.astype(bool), empty.astype(np.int64),
                     empty.astype(np.int64), name=stream.name)
    return Trace(
        np.concatenate([c.times_ms for c in parts]),
        np.concatenate([c.is_write for c in parts]),
        np.concatenate([c.offsets for c in parts]),
        np.concatenate([c.sizes for c in parts]),
        name=stream.name,
    )


class MergedStream:
    """Interleave several streams into one arrival process by timestamp.

    Ties break by stream position (earlier stream wins), and requests of
    one stream never reorder relative to each other — the merge is the
    stable k-way counterpart of ``argsort(times, kind="stable")`` over
    the concatenated columns, evaluated without materialising them.
    Exact float comparison keeps the merge deterministic: the timestamps
    flow through unchanged, so two iterations see identical keys.
    """

    def __init__(self, streams: "list[TraceStream]",
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
                 name: str = "merged"):
        if not streams:
            raise TraceError("MergedStream needs at least one stream")
        self.streams = list(streams)
        self.chunk_requests = _check_chunk_requests(chunk_requests)
        self.name = name

    def chunks(self) -> Iterator[Trace]:
        # Per-stream cursor: the current chunk's columns and a position.
        iters = [s.chunks() for s in self.streams]
        cols: list[tuple | None] = [None] * len(iters)
        pos = [0] * len(iters)

        def advance(s: int) -> bool:
            """Load ``s``'s next non-empty chunk; False when exhausted."""
            for chunk in iters[s]:
                if len(chunk):
                    cols[s] = (chunk.times_ms, chunk.is_write,
                               chunk.offsets, chunk.sizes)
                    pos[s] = 0
                    return True
            cols[s] = None
            return False

        heap: list[tuple[float, int]] = []
        for s in range(len(iters)):
            if advance(s):
                heapq.heappush(heap, (float(cols[s][0][0]), s))

        step = self.chunk_requests
        times: list[float] = []
        writes: list[bool] = []
        offsets: list[int] = []
        sizes: list[int] = []
        emitted = False
        while heap:
            t, s = heapq.heappop(heap)
            ct, cw, co, cs = cols[s]
            i = pos[s]
            times.append(t)
            writes.append(bool(cw[i]))
            offsets.append(int(co[i]))
            sizes.append(int(cs[i]))
            pos[s] = i + 1
            if pos[s] >= len(ct):
                if advance(s):
                    heapq.heappush(heap, (float(cols[s][0][0]), s))
            else:
                heapq.heappush(heap, (float(ct[i + 1]), s))
            if len(times) >= step:
                yield Trace(times, writes, offsets, sizes, name=self.name)
                emitted = True
                times, writes, offsets, sizes = [], [], [], []
        if times or not emitted:
            yield Trace(times, writes, offsets, sizes, name=self.name)
