"""Workload analysis beyond Tables 1 and 3.

Characterisations the paper's motivation (Section 2.2) rests on — how
skewed the update traffic is, how quickly addresses are re-used, how fast
the unique footprint grows — computed for any :class:`~repro.traces.model.Trace`
(synthetic or parsed from MSR CSVs).  The experiment runner's device-sizing
heuristics and the generator's calibration were validated against these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import Trace
from ..units import Ms


@dataclass(frozen=True)
class ReuseStats:
    """Temporal re-use of write addresses."""

    #: Requests between consecutive writes of the same address (medians
    #: and percentiles over all update events).
    median_gap: float
    p90_gap: float
    #: Share of updates whose gap is under 10% of the trace length
    #: (the temporal-locality mass).
    near_fraction: float
    n_updates: int


def write_reuse(trace: Trace) -> ReuseStats:
    """Request-index gaps between successive writes of each address."""
    last_seen: dict[int, int] = {}
    gaps: list[int] = []
    for i in range(len(trace)):
        if not trace.is_write[i]:
            continue
        offset = int(trace.offsets[i])
        if offset in last_seen:
            gaps.append(i - last_seen[offset])
        last_seen[offset] = i
    if not gaps:
        return ReuseStats(0.0, 0.0, 0.0, 0)
    arr = np.asarray(gaps, dtype=np.float64)
    near = float((arr < 0.1 * len(trace)).mean())
    return ReuseStats(
        median_gap=float(np.median(arr)),
        p90_gap=float(np.percentile(arr, 90)),
        near_fraction=near,
        n_updates=len(gaps),
    )


def footprint_curve(trace: Trace, points: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Unique written bytes versus request index.

    Returns ``(request_indices, unique_bytes)`` sampled at ``points``
    positions — the curve whose final value is the working-set footprint
    the device-sizing heuristics use.
    """
    if points < 1:
        raise ValueError("points must be >= 1")
    seen: set[int] = set()
    unique = np.zeros(len(trace), dtype=np.int64)
    total = 0
    for i in range(len(trace)):
        if trace.is_write[i]:
            offset = int(trace.offsets[i])
            if offset not in seen:
                seen.add(offset)
                total += int(trace.sizes[i])
        unique[i] = total
    idx = np.linspace(0, max(0, len(trace) - 1), num=points).astype(np.int64)
    return idx, unique[idx]


def write_skew(trace: Trace, top_fraction: float = 0.1) -> float:
    """Share of write traffic absorbed by the hottest addresses.

    ``write_skew(t, 0.1) == 0.8`` means the top 10% of write addresses
    receive 80% of all writes — the skew that makes an SLC cache work.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must lie in (0, 1]")
    counts: dict[int, int] = {}
    for i in range(len(trace)):
        if trace.is_write[i]:
            offset = int(trace.offsets[i])
            counts[offset] = counts.get(offset, 0) + 1
    if not counts:
        return 0.0
    values = np.sort(np.fromiter(counts.values(), dtype=np.int64))[::-1]
    k = max(1, int(round(top_fraction * len(values))))
    return float(values[:k].sum() / values.sum())


def interarrival_stats(trace: Trace) -> dict[str, float]:
    """Mean/median/p99 inter-arrival gaps in milliseconds."""
    if len(trace) < 2:
        return {"mean": 0.0, "median": 0.0, "p99": 0.0}
    gaps = np.diff(trace.times_ms)
    return {
        "mean": float(gaps.mean()),
        "median": float(np.median(gaps)),
        "p99": float(np.percentile(gaps, 99)),
    }


def update_interval_ms(trace: Trace) -> Ms:
    """Mean wall-clock time between successive writes of an address.

    This is the quantity the SLC cache's residency time must exceed for
    intra-page updates to be possible — the bridge between trace character
    and cache sizing.
    """
    last_time: dict[int, float] = {}
    intervals: list[float] = []
    for i in range(len(trace)):
        if not trace.is_write[i]:
            continue
        offset = int(trace.offsets[i])
        t = float(trace.times_ms[i])
        if offset in last_time:
            intervals.append(t - last_time[offset])
        last_time[offset] = t
    return float(np.mean(intervals)) if intervals else 0.0
