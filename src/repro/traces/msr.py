"""Parser for MSR-Cambridge style block I/O traces.

The MSR-Cambridge collection (Narayanan et al., ToS'08) ships CSV lines::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

with ``Timestamp`` in Windows filetime (100 ns ticks), ``Type`` one of
``Read``/``Write``, ``Offset``/``Size`` in bytes.  Users who have the real
``ts0``/``wdev0``/``usr0`` files can replay them directly; everyone else
uses :mod:`repro.traces.synth`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import TraceError
from .model import Trace
from .stream import DEFAULT_CHUNK_REQUESTS as _DEFAULT_CHUNK_REQUESTS

#: Windows filetime ticks per millisecond.
_TICKS_PER_MS = 10_000


def parse_msr_csv(
    source: "str | Path | io.TextIOBase",
    name: str | None = None,
    max_requests: int | None = None,
) -> Trace:
    """Parse an MSR-Cambridge CSV into a :class:`Trace`.

    Timestamps are rebased so the trace starts at 0 ms.  Lines with zero
    size or unknown operation types raise :class:`TraceError` with the
    offending line number.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        handle: io.TextIOBase = open(path, "r", newline="")
        trace_name = name or path.stem
        close = True
    else:
        handle = source
        trace_name = name or "msr"
        close = False

    times: list[float] = []
    writes: list[bool] = []
    offsets: list[int] = []
    sizes: list[int] = []
    try:
        reader = csv.reader(handle)
        for lineno, row in enumerate(reader, start=1):
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 6:
                raise TraceError(f"{trace_name}:{lineno}: expected >=6 fields, got {len(row)}")
            try:
                ts = int(row[0])
                op = row[3].strip().lower()
                offset = int(row[4])
                size = int(row[5])
            except ValueError as exc:
                raise TraceError(f"{trace_name}:{lineno}: malformed field ({exc})") from None
            if op not in ("read", "write", "r", "w"):
                raise TraceError(f"{trace_name}:{lineno}: unknown op {row[3]!r}")
            if size <= 0 or offset < 0:
                raise TraceError(f"{trace_name}:{lineno}: invalid extent {offset}+{size}")
            times.append(ts)
            writes.append(op.startswith("w"))
            offsets.append(offset)
            sizes.append(size)
            if max_requests is not None and len(times) >= max_requests:
                break
    finally:
        if close:
            handle.close()

    if not times:
        raise TraceError(f"{trace_name}: no requests parsed")

    # Rebase in integer ticks before converting to ms: Windows filetimes
    # are ~1.3e17 and would lose sub-tick precision in float64 otherwise.
    ticks = np.asarray(times, dtype=np.int64)
    order = np.argsort(ticks, kind="stable")
    t = (ticks[order] - ticks[order[0]]) / _TICKS_PER_MS
    return Trace(
        t,
        np.asarray(writes, dtype=bool)[order],
        np.asarray(offsets, dtype=np.int64)[order],
        np.asarray(sizes, dtype=np.int64)[order],
        name=trace_name,
    )


class MsrStream:
    """Constant-memory chunked reader for a *time-sorted* MSR CSV file.

    Implements the :class:`~repro.traces.stream.TraceStream` contract:
    every ``chunks()`` call reopens the file, so iteration is repeatable
    (the property checkpoint fast-forward relies on).  Only one chunk of
    parsed rows is ever resident — the reason this exists: the eager
    :func:`parse_msr_csv` buffers the whole file to sort it, which a
    week-long trace does not fit.

    Sortedness is therefore a *requirement* here, checked row by row: a
    timestamp going backwards raises :class:`TraceError` (fall back to
    the eager parser for unsorted files).  For sorted files the emitted
    requests are byte-identical to ``parse_msr_csv`` — same rebase
    arithmetic (integer tick subtraction, then one float division), and
    a stable argsort of an already-sorted column is the identity.
    """

    def __init__(self, path: "str | Path", name: str | None = None,
                 max_requests: int | None = None,
                 chunk_requests: int = _DEFAULT_CHUNK_REQUESTS):
        if chunk_requests < 1:
            raise TraceError(
                f"chunk_requests must be >= 1, got {chunk_requests}")
        self.path = Path(path)
        self.name = name or self.path.stem
        self.max_requests = max_requests
        self.chunk_requests = chunk_requests

    def chunks(self) -> "Iterator[Trace]":
        name = self.name
        limit = self.max_requests
        step = self.chunk_requests
        t0: int | None = None
        prev = 0
        parsed = 0
        times: list[float] = []
        writes: list[bool] = []
        offsets: list[int] = []
        sizes: list[int] = []
        emitted = False
        with open(self.path, "r", newline="") as handle:
            reader = csv.reader(handle)
            for lineno, row in enumerate(reader, start=1):
                if not row or row[0].startswith("#"):
                    continue
                if len(row) < 6:
                    raise TraceError(
                        f"{name}:{lineno}: expected >=6 fields, got {len(row)}")
                try:
                    ts = int(row[0])
                    op = row[3].strip().lower()
                    offset = int(row[4])
                    size = int(row[5])
                except ValueError as exc:
                    raise TraceError(
                        f"{name}:{lineno}: malformed field ({exc})") from None
                if op not in ("read", "write", "r", "w"):
                    raise TraceError(f"{name}:{lineno}: unknown op {row[3]!r}")
                if size <= 0 or offset < 0:
                    raise TraceError(
                        f"{name}:{lineno}: invalid extent {offset}+{size}")
                if t0 is None:
                    t0 = ts
                elif ts < prev:
                    raise TraceError(
                        f"{name}:{lineno}: timestamps go backwards "
                        f"({ts} after {prev}); streaming requires a "
                        f"time-sorted file — use parse_msr_csv to sort")
                prev = ts
                times.append((ts - t0) / _TICKS_PER_MS)
                writes.append(op.startswith("w"))
                offsets.append(offset)
                sizes.append(size)
                parsed += 1
                if len(times) >= step:
                    yield Trace(times, writes, offsets, sizes, name=name)
                    emitted = True
                    times, writes, offsets, sizes = [], [], [], []
                if limit is not None and parsed >= limit:
                    break
        if parsed == 0:
            raise TraceError(f"{name}: no requests parsed")
        if times or not emitted:
            yield Trace(times, writes, offsets, sizes, name=name)


def write_msr_csv(trace: Trace, destination: "str | Path | io.TextIOBase") -> None:
    """Serialise a trace back to the MSR CSV format (round-trip support)."""
    if isinstance(destination, (str, Path)):
        handle: io.TextIOBase = open(destination, "w", newline="")
        close = True
    else:
        handle = destination
        close = False
    try:
        writer = csv.writer(handle)
        for req in trace:
            writer.writerow([
                int(round(req.time_ms * _TICKS_PER_MS)),
                trace.name,
                0,
                "Write" if req.is_write else "Read",
                req.offset,
                req.size,
                0,
            ])
    finally:
        if close:
            handle.close()


def load_traces(paths: Iterable["str | Path"], max_requests: int | None = None) -> list[Trace]:
    """Parse several MSR CSV files."""
    return [parse_msr_csv(p, max_requests=max_requests) for p in paths]
