"""Synthetic trace generation calibrated to the paper's Tables 1 and 3.

The generator is *constructive*: it first decides the ground truth — a set
of non-overlapping write extents, which of them are hot, how often each is
written and read — so the published marginals hold by construction rather
than by tuning:

* the write-request count equals ``round(n_requests * write_ratio)``,
* every write of an extent uses the extent's size (applications rewrite a
  record in place), so updates fully cover the data they supersede;
  extents written more than once draw that size from the profile's
  Table 1 update-size mix — making the measured update distribution exact
  — while single-write (cold) extents absorb the remaining size budget so
  the overall mean write size matches the Table 3 value,
* the fraction of distinct request addresses accessed >= 4 times matches
  the profile's hot-write ratio: the read side adds *read-hot* addresses
  and unique cold reads in exactly the proportion that balances the ratio
  over the full address population.

Events are interleaved by a seeded random permutation (each extent's first
write precedes its updates by construction) and time-stamped with
exponential inter-arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import TraceError
from ..rng import make_rng
from ..units import KIB, Bytes, Ms
from .model import Trace
from .profiles import TraceProfile
from .stream import DEFAULT_CHUNK_REQUESTS

#: Subpage granularity all sizes/offsets align to.
_ALIGN = 4 * KIB
#: Representative sizes (bytes) of the three Table 1 update buckets.
_BUCKET_SMALL = 4 * KIB
_BUCKET_MID = 8 * KIB
_BUCKET_BIG = np.array([12 * KIB, 16 * KIB, 24 * KIB, 32 * KIB, 48 * KIB, 64 * KIB])
#: Sampling weights inside the >8K bucket (skewed toward 16K).
_BIG_WEIGHTS = np.array([0.25, 0.35, 0.18, 0.12, 0.06, 0.04])
_BIG_WEIGHTS = _BIG_WEIGHTS / _BIG_WEIGHTS.sum()
#: Largest request the generator emits.
_MAX_SIZE = 64 * KIB
#: Accesses that make an address hot (paper Section 4.1).
_HOT_THRESHOLD = 4
#: Mean accesses of a read-hot address: 4 + Poisson(2).
_READ_HOT_MEAN = 6.0
#: Mean accesses of a unique cold read address (1 w.p. 0.8, 2 w.p. 0.2).
_COLD_READ_MEAN = 1.2
#: Share of reads directed at hot write extents when any exist.
_HIT_SHARE = 0.7
#: Temporal locality: an extent's accesses fall inside a window this wide
#: (as a fraction of the whole trace).  Block I/O traces cluster re-use in
#: time — without this no cache of realistic size could retain anything.
_LOCALITY_WINDOW = 0.08


@dataclass(frozen=True)
class ExtentTable:
    """Ground truth the generator built the trace from (exposed for tests)."""

    starts: np.ndarray        #: byte start of each write extent
    sizes: np.ndarray         #: byte length of each write extent
    write_counts: np.ndarray  #: number of write requests per extent
    is_hot: np.ndarray        #: write-hot flag (>= 4 writes) per extent

    @property
    def n_extents(self) -> int:
        """Number of distinct write extents."""
        return len(self.starts)

    @property
    def footprint_bytes(self) -> Bytes:
        """Unique bytes ever written."""
        return int(self.sizes.sum())

    def page_footprint_bytes(self, page_size: Bytes = 16 * KIB) -> Bytes:
        """Bytes of whole physical pages the extents pin down.

        Schemes that place one extent chunk per page without merging
        (Baseline, IPU's extent-grouped pages) occupy a full page per
        logical page an extent overlaps; device sizing must budget for
        that, not for the raw byte footprint.
        """
        first = self.starts // page_size
        last = (self.starts + self.sizes - 1) // page_size
        return int((last - first + 1).sum()) * page_size


class SyntheticTraceGenerator:
    """Generate a :class:`Trace` matching a :class:`TraceProfile`."""

    def __init__(
        self,
        profile: TraceProfile,
        n_requests: int | None = None,
        mean_interarrival_ms: Ms = 0.25,
        seed: int | None = None,
    ):
        profile.validate()
        if mean_interarrival_ms <= 0:
            raise TraceError("mean_interarrival_ms must be positive")
        self.profile = profile
        self.n_requests = int(n_requests if n_requests is not None else profile.n_requests)
        if self.n_requests < 1:
            raise TraceError("n_requests must be >= 1")
        self.mean_interarrival_ms = mean_interarrival_ms
        self.rng = make_rng(seed, key=f"trace:{profile.name}")
        #: Root seed, kept so :meth:`stream` can hand out re-iterable
        #: chunked views of the same design.
        self._seed = seed
        self.extents: ExtentTable | None = None

    # -- sampling helpers ---------------------------------------------------

    def _sample_update_sizes(self, n: int) -> np.ndarray:
        """Draw ``n`` update-request sizes from the Table 1 bucket mix."""
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        probs = np.asarray(self.profile.update_size_probs, dtype=np.float64)
        probs = probs / probs.sum()
        buckets = self.rng.choice(3, size=n, p=probs)
        sizes = np.full(n, _BUCKET_SMALL, dtype=np.int64)
        sizes[buckets == 1] = _BUCKET_MID
        nbig = int((buckets == 2).sum())
        if nbig:
            sizes[buckets == 2] = self.rng.choice(_BUCKET_BIG, size=nbig, p=_BIG_WEIGHTS)
        return sizes

    # -- write-side construction ---------------------------------------------

    def _build_counts(self, n_writes: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-extent write counts and write-hot flags summing to ``n_writes``.

        Hot extents draw heavy-tailed (Pareto) write counts >= 4; cold
        extents one to three.  The population is padded/trimmed with singleton extents so
        the counts sum exactly.
        """
        r = self.profile.hot_write_ratio
        # Hot access counts are heavy-tailed: a handful of addresses absorb
        # most of the re-writes, so hot counts follow 4 + floor(3 *
        # Pareto(1.4)) capped at 200 (empirical mean ~9.6).
        hot_mean = 9.6
        mean_count = r * hot_mean + (1.0 - r) * 1.3
        n_extents = max(1, int(round(n_writes / mean_count)))
        n_hot = min(int(round(r * n_extents)), n_writes // _HOT_THRESHOLD)
        n_cold = n_extents - n_hot

        tail_cap = min(200, max(6, n_writes // 10))
        hot_counts = 4 + np.minimum(
            np.floor(3.0 * self.rng.pareto(1.4, size=n_hot)), tail_cap
        ).astype(np.int64)
        cold_counts = 1 + self.rng.choice(3, size=n_cold, p=[0.75, 0.2, 0.05])
        counts = np.concatenate([hot_counts, cold_counts]).astype(np.int64)
        is_hot = np.zeros(len(counts), dtype=bool)
        is_hot[:n_hot] = True

        diff = n_writes - int(counts.sum())
        if diff > 0:
            # Pad with a hot/cold mix that preserves the hot-address share
            # (heavy-tailed draws often undershoot their mean, and padding
            # with cold singletons alone would dilute hotness):
            # k_h extents of 4 writes and k_c singletons with
            # 4*k_h + k_c = diff and (H + k_h) / (U + k_h + k_c) = r.
            U, H = len(counts), int(is_hot.sum())
            k_h = int(round((r * (U + diff) - H) / (1.0 + 3.0 * r)))
            k_h = max(0, min(k_h, diff // _HOT_THRESHOLD))
            k_c = diff - _HOT_THRESHOLD * k_h
            counts = np.concatenate([
                counts,
                np.full(k_h, _HOT_THRESHOLD, dtype=np.int64),
                np.ones(k_c, dtype=np.int64),
            ])
            is_hot = np.concatenate([
                is_hot, np.ones(k_h, dtype=bool), np.zeros(k_c, dtype=bool)])
        elif diff < 0:
            deficit = -diff
            # Shave writes off the largest counts (preserving the extent
            # population and therefore the hot share), never pushing a
            # hot extent below the hotness threshold while any slack
            # remains elsewhere.
            while deficit > 0 and len(counts):
                floors = np.where(is_hot, _HOT_THRESHOLD, 1)
                slack = counts - floors
                idx = int(np.argmax(slack))
                if slack[idx] > 0:
                    take = min(deficit, int(slack[idx]))
                else:  # pragma: no cover - degenerate tiny traces
                    idx = int(np.argmax(counts))
                    take = min(deficit, int(counts[idx]))
                counts[idx] -= take
                deficit -= take
                if counts[idx] <= 0:  # pragma: no cover - degenerate tiny traces
                    counts = np.delete(counts, idx)
                    is_hot = np.delete(is_hot, idx)
        return counts, is_hot


    def _balanced_update_sizes(self, weights: np.ndarray) -> np.ndarray:
        """Sizes for rewritten extents whose *weighted* (per-update) bucket
        distribution matches Table 1.

        Write counts are heavy-tailed, so sampling each extent's bucket
        independently would let a single 100-update extent drag the
        measured distribution; instead buckets are assigned by largest
        remaining deficit against the target shares of total update mass.
        """
        n = len(weights)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        probs = np.asarray(self.profile.update_size_probs, dtype=np.float64)
        probs = probs / probs.sum()
        need = probs * float(weights.sum())
        sizes = np.empty(n, dtype=np.int64)
        big_pool = self.rng.choice(_BUCKET_BIG, size=n, p=_BIG_WEIGHTS)
        # Place the heaviest extents first so the many light ones can
        # fine-tune the remaining deficits.
        order = np.argsort(-weights, kind="stable")
        for idx in order:
            bucket = int(np.argmax(need))
            need[bucket] -= float(weights[idx])
            if bucket == 0:
                sizes[idx] = _BUCKET_SMALL
            elif bucket == 1:
                sizes[idx] = _BUCKET_MID
            else:
                sizes[idx] = big_pool[idx]
        return sizes

    def _build_extent_sizes(self, counts: np.ndarray) -> np.ndarray:
        """Per-extent request sizes.

        Every write of an extent — first write and re-writes alike — uses
        the extent's size, mirroring how applications rewrite a record
        in place.  This makes updates *fully cover* the previous version
        (no page-mapped scheme leaks partially-superseded pages) and makes
        the measured update-size distribution exact:

        * extents written more than once draw their size from the Table 1
          update-size mix (their re-writes *are* the updated requests),
        * single-write extents (the cold bulk) absorb whatever size budget
          is left so the overall mean write size lands on Table 3.
        """
        n_writes = int(counts.sum())
        multi = counts >= 2
        sizes = np.empty(len(counts), dtype=np.int64)
        sizes[multi] = self._balanced_update_sizes(counts[multi] - 1)

        singles = ~multi
        n_singles = int(singles.sum())
        if n_singles:
            target_total = self.profile.mean_write_bytes * n_writes
            multi_bytes = int((counts[multi] * sizes[multi]).sum())
            mu_single = (target_total - multi_bytes) / max(1, n_singles)
            mu_single = float(np.clip(mu_single, _ALIGN, _MAX_SIZE))
            lam = mu_single / _ALIGN - 1.0
            draw = _ALIGN * (1 + self.rng.poisson(max(lam, 0.0), size=n_singles))
            sizes[singles] = np.minimum(draw, _MAX_SIZE)
        return sizes

    # -- read-side construction ------------------------------------------------

    def _design_reads(
        self, n_reads: int, counts: np.ndarray, is_hot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decide read targets so the *overall* hot-address ratio matches.

        Returns ``(hit_extents, read_hot_counts, cold_single_counts)``:
        indices of hot write extents receiving hit reads, per-address access
        counts of read-hot addresses, and of unique cold read addresses.
        The balance equation sizes the read-only population so that::

            (H_w + H_r) / (U + H_r + S_r) = hot_write_ratio
        """
        r = self.profile.hot_write_ratio
        U = len(counts)
        H_w = int(is_hot.sum())
        empty = np.zeros(0, dtype=np.int64)
        if n_reads == 0:
            return empty, empty, empty

        hot_ids = np.flatnonzero(is_hot)
        n_hits = int(round(n_reads * _HIT_SHARE)) if len(hot_ids) else 0
        budget = n_reads - n_hits

        # Solve S_r, H_r from the balance and budget equations.
        denom = _READ_HOT_MEAN * r / max(1e-9, (1.0 - r)) + _COLD_READ_MEAN
        bias = _READ_HOT_MEAN * (r * U - H_w) / max(1e-9, (1.0 - r))
        S_r = max(0.0, (budget - bias) / denom)
        H_r = (r * (U + S_r) - H_w) / max(1e-9, (1.0 - r))
        if H_r < 0:
            # Write-hot already overshoots: dilute with cold singles only.
            H_r = 0.0
            S_r = min(budget / _COLD_READ_MEAN, max(0.0, H_w / max(r, 1e-9) - U))
        n_read_hot = int(round(H_r))
        n_singles = int(round(S_r))

        read_hot_counts = (
            _HOT_THRESHOLD + self.rng.poisson(_READ_HOT_MEAN - _HOT_THRESHOLD,
                                              size=n_read_hot)
        ).astype(np.int64)
        single_counts = (1 + (self.rng.random(n_singles) < (_COLD_READ_MEAN - 1.0))
                         ).astype(np.int64)

        # Reconcile the exact read budget by adjusting hit reads (hitting an
        # already-hot extent never changes the address population).
        used = int(read_hot_counts.sum() + single_counts.sum())
        n_hits = n_reads - used
        while n_hits < 0:
            # Too many read-only accesses: shave repeats (not addresses).
            if len(read_hot_counts) and read_hot_counts.max() > _HOT_THRESHOLD:
                idx = int(np.argmax(read_hot_counts))
                take = min(-n_hits, int(read_hot_counts[idx]) - _HOT_THRESHOLD)
                read_hot_counts[idx] -= take
                n_hits += take
            elif len(single_counts) and single_counts.max() > 1:
                idx = int(np.argmax(single_counts))
                single_counts[idx] -= 1
                n_hits += 1
            elif len(single_counts):
                single_counts = single_counts[:-1]
                n_hits += 1
            elif len(read_hot_counts):  # pragma: no cover - tiny traces
                read_hot_counts = read_hot_counts[:-1]
                n_hits += _HOT_THRESHOLD
            else:  # pragma: no cover
                break
        n_hits = max(0, n_hits)

        if len(hot_ids) and n_hits:
            weights = counts[hot_ids].astype(np.float64)
            weights /= weights.sum()
            hit_extents = self.rng.choice(hot_ids, size=n_hits, p=weights)
        elif n_hits:
            # No hot write extents: absorb the remainder as one read-hot address.
            read_hot_counts = np.concatenate(
                [read_hot_counts, np.array([n_hits], dtype=np.int64)])
            hit_extents = empty
        else:
            hit_extents = empty
        return hit_extents, read_hot_counts, single_counts

    # -- generation --------------------------------------------------------------

    def _design(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the constructive design phase and return the event columns.

        Consumes the generator's RNG in exactly the order the historical
        monolithic ``generate()`` did, so the returned
        ``(times, is_write, offsets, sizes)`` arrays are byte-identical
        to the columns of the trace it used to build.  ``generate()``
        wraps them in one :class:`Trace`; :meth:`iter_chunks` slices
        them into bounded chunks without re-drawing anything — the
        design decides, emission only reads.
        """
        n_total = self.n_requests
        n_writes = min(max(int(round(n_total * self.profile.write_ratio)), 1), n_total)
        n_reads = n_total - n_writes

        counts, is_hot = self._build_counts(n_writes)
        sizes = self._build_extent_sizes(counts)

        # Scatter extents over the address space.
        order = self.rng.permutation(len(sizes))
        starts = np.zeros(len(sizes), dtype=np.int64)
        starts[order] = np.concatenate([[0], np.cumsum(sizes[order])[:-1]])
        footprint = int(sizes.sum())
        self.extents = ExtentTable(starts, sizes, counts.copy(), is_hot.copy())

        # Temporal locality: every extent gets a window inside the trace;
        # all of its accesses (writes and read hits) land in that window.
        window = _LOCALITY_WINDOW
        ext_base = self.rng.random(len(counts)) * (1.0 - window)

        # Write events: extent ids repeated by count, ordered by their
        # temporal keys (the k-th key of an extent is its k-th write).
        write_ids = np.repeat(np.arange(len(counts)), counts)
        w_keys = ext_base[write_ids] + self.rng.random(n_writes) * window
        w_offsets = starts[write_ids]
        w_sizes = sizes[write_ids]

        # Read events.
        hit_ext, read_hot_counts, single_counts = self._design_reads(
            n_reads, counts, is_hot)
        r_offsets_parts: list[np.ndarray] = []
        r_sizes_parts: list[np.ndarray] = []
        r_keys_parts: list[np.ndarray] = []
        if len(hit_ext):
            hs = np.minimum(self._sample_update_sizes(len(hit_ext)), sizes[hit_ext])
            r_offsets_parts.append(starts[hit_ext])
            r_sizes_parts.append(hs)
            r_keys_parts.append(
                ext_base[hit_ext] + self.rng.random(len(hit_ext)) * window)
        ro_cursor = footprint
        for addr_counts in (read_hot_counts, single_counts):
            if not len(addr_counts):
                continue
            addr_sizes = self._sample_update_sizes(len(addr_counts))
            addr_starts = ro_cursor + np.concatenate(
                [[0], np.cumsum(addr_sizes)[:-1]])
            ro_cursor = int(addr_starts[-1] + addr_sizes[-1])
            n_events = int(addr_counts.sum())
            addr_base = self.rng.random(len(addr_counts)) * (1.0 - window)
            r_offsets_parts.append(np.repeat(addr_starts, addr_counts))
            r_sizes_parts.append(np.repeat(addr_sizes, addr_counts))
            r_keys_parts.append(
                np.repeat(addr_base, addr_counts)
                + self.rng.random(n_events) * window)
        if r_offsets_parts:
            r_offsets = np.concatenate(r_offsets_parts)
            r_sizes = np.concatenate(r_sizes_parts)
            r_keys = np.concatenate(r_keys_parts)
        else:
            r_offsets = np.zeros(0, dtype=np.int64)
            r_sizes = np.zeros(0, dtype=np.int64)
            r_keys = np.zeros(0, dtype=np.float64)
        if len(r_offsets) != n_reads:  # pragma: no cover - defensive
            raise TraceError(
                f"read construction produced {len(r_offsets)} events, wanted {n_reads}")

        # Merge reads and writes by temporal key.
        all_keys = np.concatenate([w_keys, r_keys])
        is_write_all = np.concatenate([
            np.ones(n_writes, dtype=bool), np.zeros(n_reads, dtype=bool)])
        all_off = np.concatenate([w_offsets, r_offsets])
        all_sz = np.concatenate([w_sizes, r_sizes])
        order = np.argsort(all_keys, kind="stable")

        times = np.cumsum(self.rng.exponential(self.mean_interarrival_ms, size=n_total))
        return times, is_write_all[order], all_off[order], all_sz[order]

    def generate(self) -> Trace:
        """Build the trace."""
        times, is_write, offsets, sizes = self._design()
        return Trace(times, is_write, offsets, sizes, name=self.profile.name)

    def iter_chunks(self, chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
                    ) -> "Iterator[Trace]":
        """Yield the trace as bounded chunks (lazy per-chunk emission).

        The design phase still runs once up front (its numpy columns are
        compact — a few dozen bytes per request), but the per-chunk
        ``Trace`` objects and everything downstream of them (the
        replay's python-list conversions, LSN expansion) are bounded by
        ``chunk_requests`` instead of the trace length.  Chunk ``k``
        holds rows ``[k * chunk_requests, (k+1) * chunk_requests)`` of
        :meth:`generate`'s trace, timestamps absolute — concatenating
        the chunks reproduces ``generate()`` byte-identically.
        """
        if chunk_requests < 1:
            raise TraceError(
                f"chunk_requests must be >= 1, got {chunk_requests}")
        times, is_write, offsets, sizes = self._design()
        name = self.profile.name
        for lo in range(0, len(times), chunk_requests):
            hi = lo + chunk_requests
            yield Trace(times[lo:hi], is_write[lo:hi], offsets[lo:hi],
                        sizes[lo:hi], name=name)

    def stream(self, chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
               ) -> "SyntheticStream":
        """A re-iterable :class:`SyntheticStream` over this design."""
        return SyntheticStream(
            self.profile, n_requests=self.n_requests,
            mean_interarrival_ms=self.mean_interarrival_ms,
            seed=self._seed, chunk_requests=chunk_requests)


class SyntheticStream:
    """Re-iterable chunked view of one synthetic trace design.

    Implements the :class:`~repro.traces.stream.TraceStream` contract:
    every ``chunks()`` call builds a *fresh* generator from the stored
    ``(profile, n_requests, interarrival, seed)`` tuple, so iteration is
    repeatable — which is what lets a checkpoint restore fast-forward
    the stream by regenerating it and skipping consumed chunks.
    """

    def __init__(self, profile: TraceProfile, n_requests: int | None = None,
                 mean_interarrival_ms: Ms = 0.25, seed: int | None = None,
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS):
        if chunk_requests < 1:
            raise TraceError(
                f"chunk_requests must be >= 1, got {chunk_requests}")
        # Validate eagerly: a bad profile/arg should fail at construction,
        # not on first iteration inside a worker process.
        SyntheticTraceGenerator(profile, n_requests=n_requests,
                                mean_interarrival_ms=mean_interarrival_ms,
                                seed=seed)
        self.profile = profile
        self.n_requests = n_requests
        self.mean_interarrival_ms = mean_interarrival_ms
        self.seed = seed
        self.chunk_requests = chunk_requests
        self.name = profile.name

    def _generator(self) -> SyntheticTraceGenerator:
        return SyntheticTraceGenerator(
            self.profile, n_requests=self.n_requests,
            mean_interarrival_ms=self.mean_interarrival_ms, seed=self.seed)

    def chunks(self) -> "Iterator[Trace]":
        return self._generator().iter_chunks(self.chunk_requests)


def generate(
    profile: TraceProfile,
    n_requests: int | None = None,
    seed: int | None = None,
    mean_interarrival_ms: Ms = 0.25,
) -> Trace:
    """Convenience wrapper: build a generator and produce the trace."""
    return SyntheticTraceGenerator(
        profile, n_requests=n_requests, seed=seed,
        mean_interarrival_ms=mean_interarrival_ms,
    ).generate()
