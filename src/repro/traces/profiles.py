"""Per-trace statistical profiles (Tables 1 and 3 of the paper).

Each :class:`TraceProfile` captures the published aggregate statistics of
one evaluation trace.  The synthetic generator consumes a profile and
produces a request stream whose measured statistics match it; the Table 1
and Table 3 experiments regenerate the published numbers from the stream.

Paper values::

    Table 3 (ordered by write ratio)          Table 1 (updated requests)
    trace   #req      writeR  writeSZ hot     <=4K    4-8K   >8K
    ts0     1,801,734 82.4%   8.0KB   50.5%   69.8%   17.9%  12.3%
    wdev0   1,143,261 79.9%   8.2KB   58.2%   73.2%    6.8%  20.1%
    lun1    1,073,405 73.1%   7.6KB   10.0%   85.2%    7.3%   7.5%
    usr0    2,237,889 59.6%   10.3KB  36.5%   66.3%   12.1%  21.6%
    lun2    1,758,887 19.3%   9.7KB    8.5%   92.6%    2.5%   4.9%
    ads     1,532,120  9.5%   7.0KB   74.5%*  18.3%   [*Table 1 row: 74.5/14.1/11.4]
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError
from ..units import KIB, Bytes


@dataclass(frozen=True)
class TraceProfile:
    """Published aggregate statistics of one block I/O trace."""

    name: str
    #: Total request count reported in Table 3.
    n_requests: int
    #: Fraction of requests that are writes.
    write_ratio: float
    #: Mean write request size in bytes.
    mean_write_bytes: Bytes
    #: Fraction of distinct addresses requested at least 4 times ("Hot write").
    hot_write_ratio: float
    #: Update-request size distribution over (<=4K, 4-8K, >8K] (Table 1).
    update_size_probs: tuple[float, float, float]

    def validate(self) -> "TraceProfile":
        """Sanity-check published statistics; returns ``self``."""
        if self.n_requests < 1:
            raise TraceError(f"{self.name}: non-positive request count")
        if not 0.0 < self.write_ratio <= 1.0:
            raise TraceError(f"{self.name}: write ratio {self.write_ratio} out of (0,1]")
        if self.mean_write_bytes < 512:
            raise TraceError(f"{self.name}: implausible mean write size")
        if not 0.0 <= self.hot_write_ratio <= 1.0:
            raise TraceError(f"{self.name}: hot ratio out of [0,1]")
        total = sum(self.update_size_probs)
        if abs(total - 1.0) > 0.02:
            raise TraceError(
                f"{self.name}: update size buckets sum to {total:.3f}, expected ~1")
        return self


#: The six evaluation traces, in Table 3 order.
PROFILES: dict[str, TraceProfile] = {
    p.name: p.validate()
    for p in (
        TraceProfile("ts0", 1_801_734, 0.824, int(8.0 * KIB), 0.505,
                     (0.698, 0.179, 0.123)),
        TraceProfile("wdev0", 1_143_261, 0.799, int(8.2 * KIB), 0.582,
                     (0.732, 0.068, 0.201)),
        TraceProfile("lun1", 1_073_405, 0.731, int(7.6 * KIB), 0.100,
                     (0.852, 0.073, 0.075)),
        TraceProfile("usr0", 2_237_889, 0.596, int(10.3 * KIB), 0.365,
                     (0.663, 0.121, 0.216)),
        TraceProfile("lun2", 1_758_887, 0.193, int(9.7 * KIB), 0.085,
                     (0.926, 0.025, 0.049)),
        TraceProfile("ads", 1_532_120, 0.095, int(7.0 * KIB), 0.183,
                     (0.745, 0.141, 0.114)),
    )
}

#: Table 3 row order.
TRACE_NAMES: tuple[str, ...] = tuple(PROFILES)


def profile(name: str) -> TraceProfile:
    """Look up a built-in profile by trace name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise TraceError(
            f"unknown trace {name!r}; available: {', '.join(PROFILES)}") from None
