"""Trace data model.

A :class:`Trace` stores requests column-wise in NumPy arrays (times in
milliseconds, byte offsets, byte lengths, read/write flags) for compact
storage and fast characterisation, and yields :class:`TraceRequest` views
when iterated by the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import TraceError
from ..units import Bytes, Ms


class OpType(enum.Enum):
    """Request direction."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True)
class TraceRequest:
    """One block I/O request."""

    time_ms: Ms
    op: OpType
    offset: int   #: byte offset into the logical address space
    size: int     #: length in bytes

    @property
    def is_write(self) -> bool:
        """True for writes."""
        return self.op is OpType.WRITE

    @property
    def end(self) -> int:
        """One past the last byte touched."""
        return self.offset + self.size


class Trace:
    """Column-wise container of block I/O requests, sorted by time."""

    def __init__(
        self,
        times_ms: Sequence[float],
        is_write: Sequence[bool],
        offsets: Sequence[int],
        sizes: Sequence[int],
        name: str = "trace",
    ):
        self.name = name
        self.times_ms = np.asarray(times_ms, dtype=np.float64)
        self.is_write = np.asarray(is_write, dtype=bool)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        n = len(self.times_ms)
        if not (len(self.is_write) == len(self.offsets) == len(self.sizes) == n):
            raise TraceError("trace columns have mismatched lengths")
        if n and np.any(np.diff(self.times_ms) < 0):
            raise TraceError("trace times must be non-decreasing")
        if np.any(self.sizes <= 0):
            raise TraceError("trace request sizes must be positive")
        if np.any(self.offsets < 0):
            raise TraceError("trace offsets must be non-negative")

    def __len__(self) -> int:
        return len(self.times_ms)

    def __iter__(self) -> Iterator[TraceRequest]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> TraceRequest:
        return TraceRequest(
            time_ms=float(self.times_ms[i]),
            op=OpType.WRITE if self.is_write[i] else OpType.READ,
            offset=int(self.offsets[i]),
            size=int(self.sizes[i]),
        )

    def head(self, n: int) -> "Trace":
        """A new trace containing the first ``n`` requests."""
        if n < 0:
            raise TraceError(f"cannot take head({n})")
        return Trace(
            self.times_ms[:n], self.is_write[:n],
            self.offsets[:n], self.sizes[:n], name=self.name,
        )

    @property
    def n_writes(self) -> int:
        """Number of write requests."""
        return int(self.is_write.sum())

    @property
    def n_reads(self) -> int:
        """Number of read requests."""
        return len(self) - self.n_writes

    @property
    def write_ratio(self) -> float:
        """Fraction of requests that are writes."""
        return self.n_writes / len(self) if len(self) else 0.0

    @property
    def footprint_bytes(self) -> Bytes:
        """Span of the touched byte range (upper bound on unique data)."""
        if not len(self):
            return 0
        return int((self.offsets + self.sizes).max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Trace({self.name!r}, n={len(self)}, "
                f"writes={self.n_writes}, span={self.footprint_bytes})")
