"""Read-only view over the SLC-mode cache of a running FTL."""

from __future__ import annotations

from dataclasses import dataclass

from ..ftl.levels import SLC_LEVELS, BlockLevel
from ..nand.block import BlockState
from ..units import Bytes


@dataclass(frozen=True)
class LevelStats:
    """Occupancy of one block level inside the cache."""

    level: BlockLevel
    blocks: int
    valid_subpages: int
    invalid_subpages: int
    programmed_subpages: int
    updated_pages: int

    @property
    def valid_bytes(self) -> Bytes:
        """Live bytes resident at this level (4 KiB subpages)."""
        return self.valid_subpages * 4096

    @property
    def utilization(self) -> float:
        """Programmed share of this level's allocated space (64-page
        SLC-mode blocks of four-subpage pages)."""
        capacity = self.blocks * 64 * 4
        if capacity == 0:
            return 0.0
        return self.programmed_subpages / capacity


class SlcCacheView:
    """Snapshot helper over an FTL's SLC region."""

    def __init__(self, ftl):
        self.ftl = ftl

    def level_stats(self) -> dict[BlockLevel, LevelStats]:
        """Per-level occupancy of the cache right now."""
        acc: dict[BlockLevel, dict[str, int]] = {
            level: {"blocks": 0, "valid": 0, "invalid": 0,
                    "programmed": 0, "updated_pages": 0}
            for level in SLC_LEVELS
        }
        for block in self.ftl.flash.region_blocks(True):
            if block.state is BlockState.FREE or block.level is None:
                continue
            level = BlockLevel(block.level)
            if level not in acc:
                continue
            entry = acc[level]
            entry["blocks"] += 1
            entry["valid"] += block.n_valid
            entry["invalid"] += block.n_invalid
            entry["programmed"] += block.n_programmed
            entry["updated_pages"] += int(block.page_updated.sum())
        return {
            level: LevelStats(
                level=level,
                blocks=e["blocks"],
                valid_subpages=e["valid"],
                invalid_subpages=e["invalid"],
                programmed_subpages=e["programmed"],
                updated_pages=e["updated_pages"],
            )
            for level, e in acc.items()
        }

    @property
    def free_blocks(self) -> int:
        """Blocks available for allocation."""
        return self.ftl.slc_alloc.free_blocks

    @property
    def free_fraction(self) -> float:
        """Free share of the region (the GC trigger input)."""
        return self.ftl.slc_alloc.free_fraction

    @property
    def under_pressure(self) -> bool:
        """Whether GC would trigger right now."""
        return self.ftl.slc_gc.needs_collection()

    def summary_rows(self) -> list[dict]:
        """Rows for :func:`repro.metrics.report.format_table`."""
        rows = []
        for level, stats in self.level_stats().items():
            rows.append({
                "level": level.name,
                "blocks": stats.blocks,
                "valid subpages": stats.valid_subpages,
                "invalid subpages": stats.invalid_subpages,
                "updated pages": stats.updated_pages,
            })
        rows.append({
            "level": "(free)",
            "blocks": self.free_blocks,
            "valid subpages": 0,
            "invalid subpages": 0,
            "updated pages": 0,
        })
        return rows
