"""SLC-mode cache introspection.

The cache's *mechanics* live in the FTL layer (allocation in
:mod:`repro.ftl.allocator`, movement policies in the schemes, collection
in :mod:`repro.ftl.gc`); this package provides the read-only *view* of the
cache that examples, experiments and operators consume: per-level
occupancy, free headroom, hotness composition.
"""

from .region import SlcCacheView, LevelStats

__all__ = ["SlcCacheView", "LevelStats"]
