"""The paper's contribution: Intra-page Update (IPU).

* :mod:`repro.core.intra_page` — the in-page update decision: can an
  update be partial-programmed into the free slots of the page that holds
  the previous version of the data?
* :mod:`repro.core.ipu_ftl` — the full scheme: intra-page updates, the
  Work/Monitor/Hot level hierarchy with upgraded movement on overflow and
  degraded movement during GC, and the ISR victim policy (Equations 1-2).

Block levels and the ISR arithmetic live in :mod:`repro.ftl.levels` and
:mod:`repro.ftl.hotcold` (the framework layer) and are re-exported here.
"""

from ..ftl.levels import BlockLevel, SLC_LEVELS
from ..ftl.hotcold import block_isr, block_coldness, coldness_weight
from .intra_page import IntraPagePlan, plan_intra_page_update
from .ipu_ftl import IPUFTL

__all__ = [
    "BlockLevel",
    "SLC_LEVELS",
    "block_isr",
    "block_coldness",
    "coldness_weight",
    "IntraPagePlan",
    "plan_intra_page_update",
    "IPUFTL",
]
