"""The intra-page update decision (Section 3.1, Algorithm 1 lines 6-9).

An update chunk qualifies for an in-page partial program when

1. *every* subpage of the chunk is currently mapped,
2. all of them live in the **same SLC-mode page** (IPU pages hold the data
   of a single request chunk, so updates find everything co-located),
3. the update *covers* the resident data: every currently-valid slot of
   the page belongs to the chunk being rewritten (a partial rewrite would
   leave live sibling subpages in the page, and the partial-program pass
   would disturb them — exactly what IPU exists to prevent),
4. the page has enough never-programmed slots left for the new version,
5. the page has program passes left under the manufacturer limit.

Programming the new version first invalidates the old slots, so the
in-page disturb of the pass lands exclusively on data that is already
obsolete — the paper's central observation.
"""

from __future__ import annotations

from typing import NamedTuple

from ..nand.block import Block, BlockState
from ..nand.geometry import PPA


class IntraPagePlan(NamedTuple):
    """A feasible in-page update: where the new version will go."""

    block_id: int
    page: int
    #: Free slots that will receive the new version (ascending).
    target_slots: tuple[int, ...]
    #: Old slots to invalidate (one per chunk subpage).
    old_slots: tuple[int, ...]


def plan_intra_page_update(
    chunk_lsns: list[int],
    mappings: list[PPA | None],
    *,
    get_block,
    max_page_programs: int,
) -> IntraPagePlan | None:
    """Check conditions 1-4 and return the slot plan, or None.

    ``get_block`` resolves a block id to its :class:`Block`; the indirection
    keeps this module independent of :class:`~repro.nand.flash.FlashArray`.
    """
    nslots = len(chunk_lsns)
    if not nslots or nslots != len(mappings):
        return None
    if None in mappings:
        return None
    first = mappings[0]
    fblock = first.block
    fpage = first.page
    for m in mappings:
        if m.block != fblock or m.page != fpage:
            return None

    block: Block = get_block(fblock)
    if not block.is_slc:
        return None
    if block.state not in (BlockState.OPEN, BlockState.FULL):
        return None
    if block.pass_counts[fpage] >= max_page_programs:
        return None
    # Condition 3 without scanning the page: every mapping points at a
    # distinct currently-valid slot of the page, so the chunk covers the
    # resident data iff the page holds exactly that many valid subpages.
    if block.page_valid[fpage] != nslots:
        # Partial rewrite: live sibling data would absorb the disturb.
        return None
    if block.spp - block.page_programmed[fpage] < nslots:
        return None
    free = block.free_slots_of_page(fpage)

    return IntraPagePlan(
        block_id=fblock,
        page=fpage,
        target_slots=tuple(free[:nslots]),
        old_slots=tuple(m.slot for m in mappings),
    )
