"""The IPU scheme (Section 3, Algorithm 1).

Write path, per logical-page chunk:

* **new data** -> a fresh page in a *Work* block (Algorithm 1 line 5),
* **update that fits its page** -> partial-programmed into the free slots
  of the page holding the previous version; the old slots are invalidated
  first, so in-page disturb only touches obsolete data (lines 6-9),
* **update that overflows** -> a fresh page one block-level up
  (Work -> Monitor -> Hot; line 11), which is what identifies hot data.

GC uses the ISR victim policy (Equations 1-2) and the *degraded* movement
rule (lines 14-19): pages whose resident data was updated while in the
victim move to a same-level block (they proved hot); never-updated pages
move one level down, falling out of the SLC cache into the high-density
region once they drop below Work level.
"""

from __future__ import annotations

from ..config import SSDConfig
from ..nand.block import Block
from ..nand.flash import FlashArray
from ..nand.geometry import PPA
from ..sim.ops import Cause, OpRecord
from ..ftl.base import BaseFTL
from ..ftl.levels import BlockLevel
from ..ftl.mapping import SubpageMap
from ..units import Lsn, Ms
from ..ftl.victim import IsrVictimPolicy, VictimPolicy
from .intra_page import plan_intra_page_update


class IPUFTL(BaseFTL):
    """Intra-page update with three-level hot/cold separation."""

    scheme_name = "ipu"
    uses_partial_programming = True

    def __init__(self, config: SSDConfig, flash: FlashArray | None = None):
        super().__init__(config, flash)
        self.subpage_map = SubpageMap()

    def _make_slc_policy(self) -> VictimPolicy:
        return IsrVictimPolicy(refresh_ms=self.config.reliability.isr_refresh_ms)

    def _promotion_target(self, current_level: int) -> BlockLevel:
        """Level an overflowing update moves to (hook for ablations)."""
        return BlockLevel(current_level).promoted()

    # -- mapping ----------------------------------------------------------

    def lookup(self, lsn: Lsn) -> PPA | None:
        return self.subpage_map.lookup(lsn)

    def iter_bindings(self):
        yield from self.subpage_map.items()

    def _invalidate_lsn(self, lsn: Lsn) -> None:
        ppa = self.subpage_map.lookup(lsn)
        if ppa is not None:
            self.flash.invalidate(ppa.block, ppa.page, ppa.slot)
            self.subpage_map.unbind(lsn)

    # -- write path -------------------------------------------------------------

    def write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        ops: list[OpRecord] = []
        lookup = self.subpage_map.lookup
        get_block = self.flash.blocks.__getitem__
        max_pp = self.config.reliability.max_page_programs
        for chunk in self.chunks_by_lpn(lsns):
            mappings = [lookup(lsn) for lsn in chunk]
            plan = plan_intra_page_update(
                chunk, mappings,
                get_block=get_block,
                max_page_programs=max_pp,
            )
            if plan is not None:
                ops.append(self._intra_page_update(chunk, plan, now))
                continue
            ops.extend(self._out_of_place_write(chunk, mappings, now))
        return ops

    def _intra_page_update(self, chunk: list[int], plan, now: Ms) -> OpRecord:
        """Algorithm 1 lines 6-9: update inside the same page."""
        block = self.flash.block(plan.block_id)
        unbind = self.subpage_map.unbind
        bind = self.subpage_map.bind
        block_id, page = plan.block_id, plan.page
        # Invalidate first: the partial pass then disturbs no live data
        # inside the page.  All old slots live in the plan's page, so one
        # batched call covers them.
        self.flash.invalidate_many(block_id, page, list(plan.old_slots))
        for lsn in chunk:
            unbind(lsn)
        op = self.program_subpages(block, page, list(plan.target_slots),
                                   chunk, now, Cause.HOST)
        if op.block_id != block_id or op.page != page:
            # Program failure remapped the update out of place; the
            # hotness mark belongs to the actual destination.
            block = self.flash.block(op.block_id)
            block_id, page = op.block_id, op.page
        make = PPA._make  # skips the NamedTuple __new__ frame
        for lsn, slot in zip(chunk, plan.target_slots):
            bind(lsn, make((block_id, page, slot)))
        block.mark_page_updated(page)
        self.stats.intra_page_updates += 1
        self.stats.update_writes += 1
        level = block.level if block.level is not None else 0
        self.stats.note_level_write(level)
        return op

    def _out_of_place_write(self, chunk: list[int], mappings: list[PPA | None],
                            now: Ms) -> list[OpRecord]:
        """Algorithm 1 lines 4-5 and 10-11: fresh page, possibly upgraded."""
        ops: list[OpRecord] = []
        mapped = [m for m in mappings if m is not None]
        if mapped:
            self.stats.update_writes += 1
            current = max(
                (self.flash.block(m.block).level or 0) for m in mapped)
            target = self._promotion_target(current)
            self.stats.upgrade_moves += 1
        else:
            self.stats.new_data_writes += 1
            target = BlockLevel.WORK

        unbind = self.subpage_map.unbind
        stale: dict[tuple[int, int], list[int]] = {}
        for lsn, m in zip(chunk, mappings):
            if m is not None:
                stale.setdefault((m.block, m.page), []).append(m.slot)
                unbind(lsn)
        for (old_block, old_page), old_slots in stale.items():
            self.flash.invalidate_many(old_block, old_page, old_slots)

        res = self.alloc_slc_page(target, now, ops)
        if res is None:
            res = self.alloc_mlc_page(now, ops)
            self.stats.slc_overflow_chunks += 1
        block, page = res
        slots = list(range(len(chunk)))
        op = self.program_subpages(block, page, slots, chunk, now, Cause.HOST)
        ops.append(op)
        if op.block_id != block.block_id or op.page != page:
            block = self.flash.block(op.block_id)
            page = op.page
        bind = self.subpage_map.bind
        block_id = block.block_id
        make = PPA._make
        for lsn, slot in zip(chunk, slots):
            bind(lsn, make((block_id, page, slot)))
        level = block.level if block.level is not None else 0
        self.stats.note_level_write(level)
        return ops

    # -- GC movement (degraded data movement, lines 14-19) -----------------------------

    def _relocate_slc_page(self, victim: Block, page: int, slots: list[int],
                           lsns: list[Lsn], now: Ms, cause: Cause) -> list[OpRecord]:
        updated = bool(victim.page_updated[page])
        level = BlockLevel(victim.level if victim.level is not None else
                           int(BlockLevel.WORK))
        target = level if updated else level.demoted()
        ops: list[OpRecord] = []

        if target.is_slc:
            # Same-level (hot) or one-level-down (cold) SLC destination.
            # No recursive GC here: if the pool is dry the data falls
            # through to the high-density region.
            res = self.slc_alloc.alloc_page(int(target), now, for_gc=True)
            if res is not None:
                return self._move_chunk(victim, page, slots, lsns, res, now, cause)
        self.stats.evicted_subpages_to_mlc += len(slots)
        res = self.alloc_mlc_page(now, ops, for_gc=True)
        ops.extend(self._move_chunk(victim, page, slots, lsns, res, now, cause))
        return ops

    def _relocate_mlc_page(self, victim: Block, page: int, slots: list[int],
                           lsns: list[Lsn], now: Ms, cause: Cause) -> list[OpRecord]:
        ops: list[OpRecord] = []
        res = self.alloc_mlc_page(now, ops, for_gc=True)
        ops.extend(self._move_chunk(victim, page, slots, lsns, res, now, cause))
        return ops

    def _move_chunk(self, victim: Block, page: int, slots: list[int],
                    lsns: list[Lsn], dest: tuple[Block, int], now: Ms,
                    cause: Cause) -> list[OpRecord]:
        """Program one page's valid data compactly at the destination.

        The destination page keeps the extent-grouped layout (slots 0..k),
        so future updates of the data can still use intra-page programming,
        and the new page starts with a clean ``page_updated`` flag — a
        relocated page must prove its hotness again before the next GC.
        """
        block, npage = dest
        self.flash.invalidate_many(victim.block_id, page, slots)
        new_slots = list(range(len(lsns)))
        op = self.program_subpages(block, npage, new_slots, lsns, now, cause)
        if op.block_id != block.block_id or op.page != npage:
            block = self.flash.block(op.block_id)
            npage = op.page
        for lsn, slot in zip(lsns, new_slots):
            self.subpage_map.bind(lsn, PPA(block.block_id, npage, slot))
        return [op]
