"""Configuration (de)serialisation.

Round-trips :class:`~repro.config.SSDConfig` through plain dictionaries
and JSON files so experiment setups can be versioned and shared::

    cfg = scaled_config("small")
    save_config(cfg, "device.json")
    cfg2 = load_config("device.json")
    assert cfg2 == cfg
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .config import (
    CacheConfig,
    GeometryConfig,
    ReliabilityConfig,
    SSDConfig,
    TimingConfig,
    TranslationConfig,
)
from .errors import ConfigError

_SECTIONS = {
    "geometry": GeometryConfig,
    "timing": TimingConfig,
    "reliability": ReliabilityConfig,
    "cache": CacheConfig,
    "translation": TranslationConfig,
}


def config_to_dict(config: SSDConfig) -> dict:
    """Nested plain-dict form of a configuration."""
    out: dict = {
        name: dataclasses.asdict(getattr(config, name))
        for name in _SECTIONS
    }
    out["seed"] = config.seed
    return out


def config_from_dict(data: dict) -> SSDConfig:
    """Rebuild a validated configuration from :func:`config_to_dict` output.

    Unknown sections or fields raise :class:`ConfigError` (catching typos
    beats silently ignoring them); missing ones take their defaults.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a mapping, got {type(data).__name__}")
    unknown = set(data) - set(_SECTIONS) - {"seed"}
    if unknown:
        raise ConfigError(f"unknown config sections: {sorted(unknown)}")
    kwargs: dict = {}
    for name, cls in _SECTIONS.items():
        section = data.get(name, {})
        if not isinstance(section, dict):
            raise ConfigError(f"section {name!r} must be a mapping")
        valid_fields = {f.name for f in dataclasses.fields(cls)}
        bad = set(section) - valid_fields
        if bad:
            raise ConfigError(f"unknown fields in {name!r}: {sorted(bad)}")
        kwargs[name] = cls(**section)
    return SSDConfig(seed=data.get("seed"), **kwargs).validate()


def save_config(config: SSDConfig, path: "str | Path") -> None:
    """Write a configuration as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(config_to_dict(config), indent=2, sort_keys=True) + "\n")


def load_config(path: "str | Path") -> SSDConfig:
    """Read a configuration written by :func:`save_config`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from None
    return config_from_dict(data)
